//! The `semint` command-line interface.
//!
//! One entry point over all three case studies:
//!
//! ```text
//! semint run   --case sharedmem --seed 42           # one scenario, verbose
//! semint check --case all --seeds 0..50             # model-check a seed range
//! semint sweep --seeds 0..200 --jobs 4              # parallel sweep, aggregate report
//! semint sweep --profile deep                       # deep-type population (glue cache on the hot path)
//! semint sweep --seeds 0..200 --shard 0/2           # this process takes half the range
//! semint sweep --corpus-save pop.corpus             # persist the swept scenario set
//! semint sweep --corpus-load pop.corpus             # replay it (identical digests)
//! semint bench --profile deep --repeat 3            # E9/E11 timing mode (per-stage totals)
//! semint sweep --trace t.jsonl --progress           # JSONL event stream + live stderr line
//! semint profile t.jsonl                            # aggregate trace files offline
//! semint bench-diff BENCH_7.json current.json       # digest drift / throughput regression gate
//! semint report a.tsv b.tsv                         # merge + re-render saved reports
//! semint serve --workers 4 --log serve.log          # sweep-orchestration daemon (localhost TCP)
//! semint serve --state-dir state                    # crash-safe daemon: journal + checkpoints
//! semint serve --state-dir state --resume           # replay the journal, finish interrupted jobs
//! semint submit --seeds 0..500 --profile deep       # queue a sweep job on the daemon
//! semint status --job 0 --wait                      # follow it to completion, digests included
//! semint submit --shutdown                          # drain accepted jobs, then exit
//! semint chaos --seed 7 --rounds 2                  # deterministic kill-and-resume drill
//! ```
//!
//! Argument parsing is hand-rolled (the workspace is offline; no clap).

use semint_core::case::{CaseStudy, ConstructorWeights, GenProfile};
use semint_core::stats::SweepReport;
use semint_core::Fuel;
use semint_harness::cases::AnyCase;
use semint_harness::engine::{
    parallel_map, run_generated, run_scenario, sweep_all, sweep_all_observed, SweepConfig,
    MAX_SEEDS_PER_SWEEP,
};
use semint_harness::json::{
    looks_like_bench_json, parse_bench_json, parse_bench_json_with_counter_keys, render_bench_json,
    BenchMeta,
};
use semint_harness::profile::{absorb_trace, render_profile, TraceProfile};
use semint_harness::report::{render_rolling, render_sweep};
use semint_harness::serve::{
    self, ChaosConfig, Daemon, FaultKind, FaultPlan, JobSpec, JobStatus, Request, Response,
    ServeConfig, DEFAULT_PORT,
};
use semint_harness::source::{Corpus, ScenarioSource, SeedRange, Shard};
use semint_harness::trace::SweepObserver;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
semint — unified scenario engine for the PLDI 2022 interoperability case studies

USAGE:
    semint run   [--case NAME] --seed N [options]     run one scenario, verbosely, with per-stage
                                                      wall-clock (where does this seed spend time?)
    semint check [--case NAME] [--seeds A..B] [options]
                                                      Lemma 3.1 catalogue + model-check a seed range
    semint sweep [--case NAME] [--seeds A..B] [--jobs J] [--save PATH] [options]
                                                      parallel sweep with aggregate statistics
    semint bench [--case NAME] [--seeds A..B] [--repeat R] [--cold] [--json PATH] [options]
                                                      timed sweep: per-stage wall-clock totals and
                                                      throughput (model check off unless --model-check)
    semint profile TRACE...                           aggregate --trace JSONL files: per-stage totals,
                                                      per-case opcode-class histograms, allocation
                                                      stats, hottest seeds by steps
    semint bench-diff BASELINE.json CURRENT.json      compare two `bench --json` files; fails on any
                                                      digest drift or a >25% throughput regression
    semint report PATH...                             render (and, for several PATHs, merge) reports
                                                      saved by `sweep --save` or `bench --json`;
                                                      sharded sweeps merge into the digests of the
                                                      unsharded sweep
    semint serve  [--port P] [--workers W] [options]  long-running sweep-orchestration daemon: a FIFO
                                                      job queue whose jobs run as supervised fleets of
                                                      `semint sweep --shard` worker processes; crashed
                                                      or wedged workers are killed and their exact seed
                                                      slice re-issued, and the merged digests are
                                                      byte-identical to a one-shot sweep
    semint submit [--port P] [--seeds A..B] [options] queue a sweep job on a running daemon
                                                      (--shutdown drains it instead)
    semint status [--port P] [--job N] [--wait]       job states and rolling merged digests; with no
                                                      --job, every known job is listed (including
                                                      journal-recovered jobs after --resume);
                                                      --wait follows one job to completion
    semint chaos  [--seed S] [--rounds N] [options]   deterministic crash drill: per round, derive a
                                                      fault schedule from the seed, run a faulted job
                                                      on a real daemon, SIGKILL the daemon mid-job,
                                                      restart it with --resume, and assert the merged
                                                      digests and VM counters are byte-identical to an
                                                      uninterrupted one-shot sweep
    semint help                                       this text

SCENARIO SUPPLY:
    --seeds A..B     half-open seed range                    (default: 0..100)
    --shard K/N      take the K-th of N deterministic slices of the seed range;
                     the N shards are disjoint, cover the range, and their saved
                     reports merge (`semint report`) into the unsharded digests
    --corpus-load PATH  replay a persisted scenario corpus (pins the profile it
                     was saved with; excludes --seeds/--shard)
    --corpus-save PATH  persist the swept scenario set as a corpus

GENERATION PROFILE:
    --profile NAME   smoke | default | deep | boundary-heavy (default: default)
                     deep generates source types of depth >= 4, putting
                     compound-glue derivation on the sweep's critical path
    --type-depth D   max source-type depth                   (overrides profile)
    --depth D        max expression depth                    (overrides profile)
    --boundary-bias P  boundary probability 0-100            (overrides profile)
    --weights L,B,W  leaf,branch,wrap constructor weights    (overrides profile)
    --fuel N         step budget per run                     (overrides profile)

OPTIONS:
    --case NAME      sharedmem | affine | memgc | all        (default: all)
    --seed N         single seed (run only)
    --jobs J         worker threads                          (default: 4)
    --batch N        compiled artifacts executed per reused machine
                     (default: 1 = one machine per scenario); batching
                     amortises machine setup and never changes digests
                     (--cold benches rebuild everything per scenario, so
                     they run and record batch 1)
    --no-model-check skip the realizability-model stage (sweep only)
    --model-check    force the realizability-model stage (bench only; off there by default)
    --time           collect per-stage wall-clock totals
                     (generate/typecheck/compile/run/model-check);
                     deterministic VM counters are always collected
    --trace PATH     stream one JSONL event per scenario (plus periodic
                     sweep-progress heartbeats) to PATH from a dedicated
                     writer thread (sweep and bench; a bench streams every
                     repeat into the one file); implies --time; traced and
                     untraced sweeps agree on digests and counters exactly
    --progress       rolling stderr progress line (scenarios/s, safe-rate,
                     glue hit-rate, ETA)
    --repeat R       bench repeats, best-of-R is reported    (default: 3)
    --cold           bench with a cold glue cache per scenario (cache bypassed)
    --json PATH      save the bench result (per-stage totals, throughput,
                     digests) as machine-readable JSON; `semint report PATH`
                     reads it back
    --broken         sabotage a conversion rule per case study; failing
                     scenarios are reported with shrunk counterexamples
    --save PATH      save the sweep report as TSV (for `status --job N`,
                     save the job's merged report)

SERVE (daemon, submit, status):
    --port P         daemon TCP port on 127.0.0.1                (default: 7844; 0 = ephemeral)
    --workers W      concurrent shard worker processes per job   (default: 4)
    --queue-capacity C  bounded admission: at most C unfinished jobs (default: 16)
    --worker-timeout-ms T  a worker with no heartbeat for T ms is wedged,
                     killed, and its slice re-issued              (default: 30000)
    --max-retries R  re-issues per shard before the job fails     (default: 2)
    --log PATH       JSONL daemon log (job/shard lifecycle events)
    --state-dir DIR  durable state: an fsync'd JSONL job journal plus
                     checkpointed shard reports live here; with it the daemon
                     survives its own death (see --resume)
    --resume         replay the state dir's journal at startup: digest-verified
                     checkpoints are adopted as merged shards, interrupted jobs
                     are re-enqueued, and only unaccounted shards re-run
    --shards N       split a submitted job into N shard workers   (default: the
                     daemon's worker count)
    --job N          restrict `status` to job N
    --wait           poll `status --job N` until the job is done or failed
    --shutdown       `submit --shutdown` drains the daemon: accepted jobs
                     finish, new ones are refused, then it exits
    --rounds N       (chaos) kill-and-resume rounds to run        (default: 1)

FAULT INJECTION (testing):
    --die-after N    (sweep) abort the process mid-sweep after N scenarios —
                     a deterministic injected crash
    --wedge-after N  (sweep) go silent mid-sweep after N scenarios without
                     exiting — only the heartbeat timeout catches it
    --corrupt-save MODE  (sweep) sabotage the --save report after writing it:
                     `garbage` replaces it wholesale, `truncate` cuts it
                     mid-line so it cannot parse
    --fault-shard K / --fault-after N
                     (submit) sabotage shard K's first attempt after N
                     scenarios, forcing a supervised re-issue
    --fault-kind KIND  crash | wedge | corrupt-report | truncate-report —
                     how the sabotaged shard misbehaves       (default: crash)

EXIT STATUS: 0 on success, 1 if any scenario or conversion check failed, 2 on usage errors.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "check" => cmd_check(rest),
        "sweep" => cmd_sweep(rest),
        "bench" => cmd_bench(rest),
        "profile" => cmd_profile(rest),
        "bench-diff" => cmd_bench_diff(rest),
        "report" => cmd_report(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "chaos" => cmd_chaos(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(unknown_command(other)),
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Every subcommand the dispatcher knows, for the unknown-command hint.
const COMMANDS: [&str; 12] = [
    "run",
    "check",
    "sweep",
    "bench",
    "profile",
    "bench-diff",
    "report",
    "serve",
    "submit",
    "status",
    "chaos",
    "help",
];

/// Plain Levenshtein edit distance, small enough to hand-roll (the CLI is
/// dependency-free) and only ever run on two short command words.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            row.push(substitute.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The unknown-command error, with a "did you mean" hint when some known
/// subcommand is plausibly what the user typed.
fn unknown_command(given: &str) -> String {
    let closest = COMMANDS
        .iter()
        .map(|cmd| (edit_distance(given, cmd), *cmd))
        .min()
        .expect("COMMANDS is nonempty");
    // A hint beyond half the word's length would be noise, not help.
    if closest.0 * 2 <= given.chars().count() {
        format!(
            "unknown command `{given}`; did you mean `{}`? (try `semint help`)",
            closest.1
        )
    } else {
        format!("unknown command `{given}`; try `semint help`")
    }
}

/// Options shared by the scenario-driven subcommands.
#[derive(Debug)]
struct Options {
    case: String,
    range: (u64, u64),
    /// Whether `--seeds` was given explicitly (a corpus replay rejects it).
    range_set: bool,
    shard: Option<(u64, u64)>,
    corpus_load: Option<String>,
    corpus_save: Option<String>,
    seed: Option<u64>,
    jobs: usize,
    batch: usize,
    profile: GenProfile,
    /// Tri-state so each subcommand picks its own default (`sweep`: on,
    /// `bench`: off).
    model_check: Option<bool>,
    time: bool,
    broken: bool,
    repeat: usize,
    cold: bool,
    save: Option<String>,
    json: Option<String>,
    trace: Option<String>,
    progress: bool,
    // serve / submit / status / chaos
    port: u16,
    workers: usize,
    queue_capacity: usize,
    /// Tri-state so each subcommand picks its own default (`serve`: 30000,
    /// `chaos`: 5000 — drills want wedges detected fast).
    worker_timeout_ms: Option<u64>,
    max_retries: u64,
    log: Option<String>,
    /// `--state-dir DIR`: where the daemon's journal and shard checkpoints
    /// live (chaos uses it as the root for per-round state dirs).
    state_dir: Option<String>,
    /// `--resume`: replay the state dir's journal at startup.
    resume: bool,
    shards: u64,
    job: Option<u64>,
    wait: bool,
    shutdown: bool,
    /// `--rounds N`: how many kill-and-resume rounds `chaos` runs.
    rounds: u64,
    fault_shard: Option<u64>,
    fault_after: Option<u64>,
    /// `--fault-kind`: how the sabotaged shard misbehaves (submit).
    fault_kind: Option<FaultKind>,
    /// `--die-after N` fault injection (sweep): abort the process after N
    /// scenarios, for supervision tests.
    die_after: Option<u64>,
    /// `--wedge-after N` fault injection (sweep): go silent — alive but
    /// heartbeat-less — after N scenarios, for wedge-detection tests.
    wedge_after: Option<u64>,
    /// `--corrupt-save MODE` fault injection (sweep): sabotage the saved
    /// report after writing it (`garbage` | `truncate`).
    corrupt_save: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            case: "all".into(),
            range: (0, 100),
            range_set: false,
            shard: None,
            corpus_load: None,
            corpus_save: None,
            seed: None,
            jobs: 4,
            batch: 1,
            profile: GenProfile::standard(),
            model_check: None,
            time: false,
            broken: false,
            repeat: 3,
            cold: false,
            save: None,
            json: None,
            trace: None,
            progress: false,
            port: DEFAULT_PORT,
            workers: 4,
            queue_capacity: 16,
            worker_timeout_ms: None,
            max_retries: 2,
            log: None,
            state_dir: None,
            resume: false,
            shards: 0,
            job: None,
            wait: false,
            shutdown: false,
            rounds: 1,
            fault_shard: None,
            fault_after: None,
            fault_kind: None,
            die_after: None,
            wedge_after: None,
            corrupt_save: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    // Profile knob overrides are collected separately and applied on top of
    // whichever preset `--profile` selects, so flag order never matters.
    let mut profile_name: Option<String> = None;
    let mut type_depth: Option<usize> = None;
    let mut max_depth: Option<usize> = None;
    let mut boundary_bias: Option<u32> = None;
    let mut weights: Option<ConstructorWeights> = None;
    let mut fuel: Option<Fuel> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--case" => opts.case = value("--case")?.to_string(),
            "--seeds" => {
                let spec = value("--seeds")?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds expects A..B, got `{spec}`"))?;
                let start: u64 = a.parse().map_err(|e| format!("--seeds start: {e}"))?;
                let end: u64 = b.parse().map_err(|e| format!("--seeds end: {e}"))?;
                SeedRange::new(start, end).map_err(|e| format!("--seeds: {e}"))?;
                if end - start > MAX_SEEDS_PER_SWEEP {
                    return Err(format!(
                        "--seeds range `{spec}` has more than {MAX_SEEDS_PER_SWEEP} seeds"
                    ));
                }
                opts.range = (start, end);
                opts.range_set = true;
            }
            "--shard" => {
                let spec = value("--shard")?;
                let (k, n) = spec
                    .split_once('/')
                    .ok_or_else(|| format!("--shard expects K/N, got `{spec}`"))?;
                let index: u64 = k.parse().map_err(|e| format!("--shard index: {e}"))?;
                let of: u64 = n.parse().map_err(|e| format!("--shard count: {e}"))?;
                if of == 0 {
                    return Err("--shard count must be at least 1".into());
                }
                if index >= of {
                    return Err(format!(
                        "--shard index {index} is out of range for {of} shards (use 0..{of})"
                    ));
                }
                opts.shard = Some((index, of));
            }
            "--corpus-load" => opts.corpus_load = Some(value("--corpus-load")?.to_string()),
            "--corpus-save" => opts.corpus_save = Some(value("--corpus-save")?.to_string()),
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--batch" => {
                opts.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                // Rejected, never clamped — the same policy as the
                // generation-profile knobs.
                if opts.batch == 0 {
                    return Err(
                        "--batch must be at least 1 (a zero-scenario batch can run nothing)".into(),
                    );
                }
            }
            "--profile" => {
                let name = value("--profile")?;
                GenProfile::by_name(name).ok_or_else(|| {
                    format!(
                        "unknown profile `{name}` (expected one of: {})",
                        GenProfile::PRESET_NAMES.join(" | ")
                    )
                })?;
                profile_name = Some(name.to_string());
            }
            "--type-depth" => {
                type_depth = Some(
                    value("--type-depth")?
                        .parse()
                        .map_err(|e| format!("--type-depth: {e}"))?,
                )
            }
            "--depth" => {
                max_depth = Some(
                    value("--depth")?
                        .parse()
                        .map_err(|e| format!("--depth: {e}"))?,
                )
            }
            "--boundary-bias" => {
                boundary_bias = Some(
                    value("--boundary-bias")?
                        .parse()
                        .map_err(|e| format!("--boundary-bias: {e}"))?,
                )
            }
            "--weights" => {
                let spec = value("--weights")?;
                let mut parts = spec.split(',');
                let mut next = |what: &str| -> Result<u32, String> {
                    parts
                        .next()
                        .ok_or_else(|| format!("--weights expects L,B,W, got `{spec}`"))?
                        .parse::<u32>()
                        .map_err(|e| format!("--weights {what}: {e}"))
                };
                let parsed = ConstructorWeights {
                    leaf: next("leaf")?,
                    branch: next("branch")?,
                    wrap: next("wrap")?,
                };
                if parts.next().is_some() {
                    return Err(format!("--weights expects exactly L,B,W, got `{spec}`"));
                }
                weights = Some(parsed);
            }
            "--fuel" => {
                let steps: u64 = value("--fuel")?
                    .parse()
                    .map_err(|e| format!("--fuel: {e}"))?;
                fuel = Some(Fuel::steps(steps));
            }
            "--no-model-check" => opts.model_check = Some(false),
            "--model-check" => opts.model_check = Some(true),
            "--time" => opts.time = true,
            "--broken" => opts.broken = true,
            "--repeat" => {
                opts.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?;
                if opts.repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            "--cold" => opts.cold = true,
            "--save" => opts.save = Some(value("--save")?.to_string()),
            "--json" => opts.json = Some(value("--json")?.to_string()),
            "--trace" => opts.trace = Some(value("--trace")?.to_string()),
            "--progress" => opts.progress = true,
            "--port" => {
                opts.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--queue-capacity" => {
                opts.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
                if opts.queue_capacity == 0 {
                    return Err("--queue-capacity must be at least 1".into());
                }
            }
            "--worker-timeout-ms" => {
                let ms: u64 = value("--worker-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--worker-timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--worker-timeout-ms must be at least 1".into());
                }
                opts.worker_timeout_ms = Some(ms);
            }
            "--max-retries" => {
                opts.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--log" => opts.log = Some(value("--log")?.to_string()),
            "--state-dir" => opts.state_dir = Some(value("--state-dir")?.to_string()),
            "--resume" => opts.resume = true,
            "--rounds" => {
                opts.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
                if opts.rounds == 0 {
                    return Err("--rounds must be at least 1".into());
                }
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--job" => {
                opts.job = Some(value("--job")?.parse().map_err(|e| format!("--job: {e}"))?);
            }
            "--wait" => opts.wait = true,
            "--shutdown" => opts.shutdown = true,
            "--fault-shard" => {
                opts.fault_shard = Some(
                    value("--fault-shard")?
                        .parse()
                        .map_err(|e| format!("--fault-shard: {e}"))?,
                );
            }
            "--fault-after" => {
                opts.fault_after = Some(
                    value("--fault-after")?
                        .parse()
                        .map_err(|e| format!("--fault-after: {e}"))?,
                );
            }
            "--fault-kind" => {
                opts.fault_kind = Some(FaultKind::from_label(value("--fault-kind")?)?);
            }
            "--die-after" => {
                let n: u64 = value("--die-after")?
                    .parse()
                    .map_err(|e| format!("--die-after: {e}"))?;
                if n == 0 {
                    return Err("--die-after must be at least 1 scenario".into());
                }
                opts.die_after = Some(n);
            }
            "--wedge-after" => {
                let n: u64 = value("--wedge-after")?
                    .parse()
                    .map_err(|e| format!("--wedge-after: {e}"))?;
                if n == 0 {
                    return Err("--wedge-after must be at least 1 scenario".into());
                }
                opts.wedge_after = Some(n);
            }
            "--corrupt-save" => {
                let mode = value("--corrupt-save")?;
                if !matches!(mode, "garbage" | "truncate") {
                    return Err(format!(
                        "--corrupt-save expects `garbage` or `truncate`, got `{mode}`"
                    ));
                }
                opts.corrupt_save = Some(mode.to_string());
            }
            other => return Err(format!("unknown option `{other}`; try `semint help`")),
        }
    }
    if opts.corpus_load.is_some()
        && (opts.shard.is_some() || opts.range_set || profile_name.is_some())
    {
        return Err(
            "--corpus-load replays the corpus's own scenario set and profile; \
             it cannot be combined with --seeds, --shard or --profile"
                .into(),
        );
    }
    let mut profile = match &profile_name {
        Some(name) => GenProfile::by_name(name).expect("validated above"),
        None => GenProfile::standard(),
    };
    let customized = type_depth.is_some()
        || max_depth.is_some()
        || boundary_bias.is_some()
        || weights.is_some()
        || fuel.is_some();
    if let Some(d) = type_depth {
        profile.type_depth = d;
    }
    if let Some(d) = max_depth {
        profile.max_depth = d;
    }
    if let Some(b) = boundary_bias {
        profile.boundary_bias = b;
    }
    if let Some(w) = weights {
        profile.weights = w;
    }
    if let Some(f) = fuel {
        profile.fuel = f;
    }
    if customized {
        profile.name = "custom";
    }
    // Reject invalid knob combinations up front with the profile's own
    // complaint — never silently clamp.
    profile.validate()?;
    opts.profile = profile;
    Ok(opts)
}

fn selected_cases(opts: &Options) -> Result<Vec<AnyCase>, String> {
    if opts.case == "all" {
        Ok(AnyCase::all(opts.broken))
    } else {
        AnyCase::by_name(&opts.case, opts.broken)
            .map(|c| vec![c])
            .ok_or_else(|| {
                format!(
                    "unknown case study `{}` (sharedmem | affine | memgc | all)",
                    opts.case
                )
            })
    }
}

/// Builds the scenario source the options describe: a corpus, a shard of
/// the seed range, or the plain range.
fn build_source(opts: &Options) -> Result<Box<dyn ScenarioSource>, String> {
    if let Some(path) = &opts.corpus_load {
        return Ok(Box::new(Corpus::load(path)?));
    }
    let range = SeedRange::new(opts.range.0, opts.range.1).map_err(|e| format!("--seeds: {e}"))?;
    match opts.shard {
        Some((index, of)) => Ok(Box::new(
            Shard::new(range, index, of).map_err(|e| format!("--shard: {e}"))?,
        )),
        None => Ok(Box::new(range)),
    }
}

/// The friendly version of the engine's sweep-size assert: the per-range
/// check in `parse_options` cannot see the case count, so a range below
/// `MAX_SEEDS_PER_SWEEP` can still exceed it once multiplied across cases
/// (or a loaded corpus can simply be huge).
fn check_sweep_size(cases: &[AnyCase], source: &dyn ScenarioSource) -> Result<(), String> {
    let names: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let total = source.total(&names);
    if total > MAX_SEEDS_PER_SWEEP {
        return Err(format!(
            "{} supplies {total} scenarios across {} case studies, which exceeds the \
             per-sweep limit of {MAX_SEEDS_PER_SWEEP}; narrow the range, shard it, or \
             sweep one case at a time",
            source.describe(),
            cases.len()
        ));
    }
    Ok(())
}

fn sweep_config(opts: &Options, model_check_default: bool) -> SweepConfig {
    SweepConfig {
        jobs: opts.jobs,
        profile: opts.profile,
        model_check: opts.model_check.unwrap_or(model_check_default),
        time: opts.time,
        batch: opts.batch,
    }
}

/// The profile a sweep over `source` actually generates with (a corpus pins
/// its own).
fn effective_profile(source: &dyn ScenarioSource, cfg: &SweepConfig) -> GenProfile {
    source.pinned_profile().unwrap_or(cfg.profile)
}

/// Builds the `--trace`/`--progress` observer when either flag was given.
/// `passes` is how many times the whole scenario set will run (bench
/// repeats), so the progress line's total and ETA stay honest.
fn build_observer(
    opts: &Options,
    cases: &[AnyCase],
    source: &dyn ScenarioSource,
    passes: u64,
) -> Result<Option<SweepObserver>, String> {
    if opts.trace.is_none()
        && !opts.progress
        && opts.die_after.is_none()
        && opts.wedge_after.is_none()
    {
        return Ok(None);
    }
    let names: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    let total = source.total(&names) * passes;
    SweepObserver::new(total, opts.trace.as_deref().map(Path::new), opts.progress)
        .map(|observer| {
            Some(
                observer
                    .with_fault(opts.die_after)
                    .with_wedge(opts.wedge_after),
            )
        })
        .map_err(|e| format!("opening trace file: {e}"))
}

/// Settles an observer at sweep end: flushes and joins the trace writer
/// thread, surfacing any I/O error it hit.
fn finish_observer(observer: Option<SweepObserver>) -> Result<(), String> {
    match observer {
        None => Ok(()),
        Some(observer) => observer.finish().map_err(|e| format!("writing trace: {e}")),
    }
}

/// `semint run`: one scenario, spelled out — always with per-stage
/// wall-clock, so a single-seed investigation shows where the time goes
/// without a full `semint bench`.
fn cmd_run(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let seed = opts.seed.ok_or("`semint run` needs --seed N")?;
    let cases = selected_cases(&opts)?;
    let cfg = SweepConfig {
        time: true,
        ..sweep_config(&opts, true)
    };
    let mut clean = true;
    for case in &cases {
        let scenario = case.generate(seed, &opts.profile);
        println!("case {}", case.name());
        println!("  seed    {seed}");
        println!("  profile {}", opts.profile);
        println!("  type    {}", scenario.ty);
        println!("  program {}", scenario.program);
        let record = run_generated(case, &scenario, &cfg);
        if let Some(stats) = &record.stats {
            println!("  outcome {} after {} steps", stats.outcome, stats.steps);
            let c = &stats.counters;
            println!(
                "  heap    allocs {} · frees {} · reuses {} · peak live {}",
                c.heap_allocs, c.heap_frees, c.heap_reuses, c.heap_peak_live
            );
        }
        println!("  boundaries {}", record.boundaries);
        if let Some(timings) = &record.timings {
            println!("  stage wall-clock");
            for (label, ns) in timings.stages() {
                println!("    {label:<11} {:.3} ms", ns as f64 / 1_000_000.0);
            }
            println!(
                "    {:<11} {:.3} ms",
                "total",
                timings.total_ns() as f64 / 1_000_000.0
            );
        }
        match &record.failure {
            None => println!("  verdict OK"),
            Some(failure) => {
                clean = false;
                println!("  verdict FAILED [{}] {}", failure.stage, failure.reason);
                println!(
                    "  shrunk counterexample ({} steps): {}",
                    failure.shrink_steps, failure.shrunk
                );
            }
        }
    }
    Ok(clean)
}

/// `semint check`: the conversion catalogue (Lemma 3.1) plus a model-checked
/// scenario set.
fn cmd_check(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let cases = selected_cases(&opts)?;
    let source = build_source(&opts)?;
    let mut cfg = sweep_config(&opts, true);
    cfg.model_check = true;
    let mut clean = true;
    for case in &cases {
        match case.check_conversions() {
            Ok(()) => println!("case {}: conversion catalogue OK", case.name()),
            Err(failure) => {
                clean = false;
                println!("case {}: conversion catalogue FAILED", case.name());
                println!("  {failure}");
            }
        }
    }
    check_sweep_size(&cases, source.as_ref())?;
    let report = sweep_all(&cases, source.as_ref(), &cfg);
    print!("{}", render_sweep(&report));
    Ok(clean && report.failure_count() == 0)
}

/// `semint sweep`: the parallel batch run.
fn cmd_sweep(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    if opts.corrupt_save.is_some() && opts.save.is_none() {
        return Err("--corrupt-save sabotages the --save report; give --save PATH too".into());
    }
    let cases = selected_cases(&opts)?;
    let source = build_source(&opts)?;
    let mut cfg = sweep_config(&opts, true);
    // A trace event carries per-stage micros, so tracing implies timing
    // (timing never changes digests, so this is safe to force).
    if opts.trace.is_some() {
        cfg.time = true;
    }
    check_sweep_size(&cases, source.as_ref())?;
    println!(
        "sweep: {} · profile {}",
        source.describe(),
        effective_profile(source.as_ref(), &cfg)
    );
    let observer = build_observer(&opts, &cases, source.as_ref(), 1)?;
    let report = sweep_all_observed(&cases, source.as_ref(), &cfg, observer.as_ref());
    finish_observer(observer)?;
    if let Some(path) = &opts.trace {
        println!("trace saved: {path}");
    }
    print!("{}", render_sweep(&report));
    for case in &report.cases {
        println!("digest: {}", case.digest());
    }
    if let Some(path) = &opts.corpus_save {
        let corpus = Corpus::record(&cases, source.as_ref(), cfg.profile)?;
        corpus.save(path)?;
        println!("corpus saved: {path} ({} scenarios)", corpus.len());
    }
    if let Some(path) = &opts.save {
        std::fs::write(path, report.to_tsv()).map_err(|e| format!("saving {path}: {e}"))?;
        println!("saved: {path}");
        if let Some(mode) = &opts.corrupt_save {
            corrupt_saved_report(path, mode)?;
        }
    }
    Ok(report.failure_count() == 0)
}

/// `--corrupt-save` fault injection: sabotages an already-saved report so
/// the daemon's validation (and, for checkpoints, digest verification) has
/// something real to catch.  `garbage` replaces the report wholesale;
/// `truncate` cuts it mid-line — a dangling key with no value — so
/// `SweepReport::from_tsv` reliably *fails* instead of parsing a
/// smaller-but-valid report that would slip past everything except the
/// job-level completeness check.
fn corrupt_saved_report(path: &str, mode: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("corrupting {path}: {e}"))?;
    let corrupted = match mode {
        "garbage" => "this is not a sweep report\n".to_string(),
        _ => {
            let lines: Vec<&str> = text.lines().collect();
            let mut out = lines[..lines.len() / 2].join("\n");
            out.push_str("\nscenario");
            out
        }
    };
    std::fs::write(path, corrupted).map_err(|e| format!("corrupting {path}: {e}"))?;
    eprintln!("[fault] --corrupt-save {mode}: sabotaged the saved report at {path}");
    Ok(())
}

/// `semint bench`: the E9/E11 timing mode — repeated timed sweeps with
/// per-stage wall-clock totals and throughput, optionally with the glue
/// cache bypassed (`--cold` builds every scenario's interop system from
/// scratch, so no derivation survives between scenarios).
fn cmd_bench(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let cases = selected_cases(&opts)?;
    let source = build_source(&opts)?;
    let mut cfg = sweep_config(&opts, false);
    cfg.time = true;
    // A cold bench rebuilds everything per scenario (machines included),
    // so it runs — and is recorded as — one artifact per machine,
    // whatever `--batch` was given.
    if opts.cold {
        cfg.batch = 1;
    }
    if let Some(pinned) = source.pinned_profile() {
        cfg.profile = pinned;
    }
    check_sweep_size(&cases, source.as_ref())?;
    println!(
        "bench: {} · profile {} · {} repeats · glue cache {} · model check {} · batch {}",
        source.describe(),
        cfg.profile,
        opts.repeat,
        if opts.cold {
            "cold per scenario"
        } else {
            "shared"
        },
        if cfg.model_check { "on" } else { "off" },
        cfg.batch
    );
    let observer = build_observer(&opts, &cases, source.as_ref(), opts.repeat as u64)?;
    let mut best: Option<(u64, SweepReport)> = None;
    let mut digests_stable = true;
    for _rep in 0..opts.repeat {
        let started = std::time::Instant::now();
        let report = if opts.cold {
            cold_sweep(
                &cases,
                source.as_ref(),
                &cfg,
                opts.broken,
                observer.as_ref(),
            )
        } else {
            sweep_all_observed(&cases, source.as_ref(), &cfg, observer.as_ref())
        };
        let wall_ns = started.elapsed().as_nanos() as u64;
        if let Some((_, prior)) = &best {
            let digest = |r: &SweepReport| r.cases.iter().map(|c| c.digest()).collect::<Vec<_>>();
            if digest(prior) != digest(&report) {
                digests_stable = false;
            }
        }
        match &best {
            Some((best_ns, _)) if *best_ns <= wall_ns => {}
            _ => best = Some((wall_ns, report)),
        }
    }
    finish_observer(observer)?;
    if let Some(path) = &opts.trace {
        println!("trace saved: {path}");
    }
    let (wall_ns, report) = best.expect("--repeat is at least 1");
    let scenarios = report.scenarios();
    for case in &report.cases {
        println!("case {}", case.case);
        println!("  scenarios        {:>10}", case.scenarios);
        if let Some(timings) = &case.timings {
            println!("  stage wall-clock (best repeat)");
            for (label, ns) in timings.stages() {
                println!("    {label:<14} {:>10.3} ms", ns as f64 / 1_000_000.0);
            }
            println!(
                "    {:<14} {:>10.3} ms",
                "total",
                timings.total_ns() as f64 / 1_000_000.0
            );
        }
        println!(
            "  glue cache       {:>10} hits / {} misses ({:.1}% hit rate)",
            case.glue_hits,
            case.glue_misses,
            case.glue_hit_rate() * 100.0
        );
        println!("  failures         {:>10}", case.failures.len());
    }
    let wall_s = wall_ns as f64 / 1e9;
    println!(
        "best wall-clock: {:.3} s ({:.0} scenarios/s across {} scenarios)",
        wall_s,
        scenarios as f64 / wall_s.max(1e-9),
        scenarios
    );
    println!(
        "digests stable across repeats: {}",
        if digests_stable { "yes" } else { "NO" }
    );
    for case in &report.cases {
        println!("digest: {}", case.digest());
    }
    if let Some(path) = &opts.corpus_save {
        let corpus = Corpus::record(&cases, source.as_ref(), cfg.profile)?;
        corpus.save(path)?;
        println!("corpus saved: {path} ({} scenarios)", corpus.len());
    }
    if let Some(path) = &opts.save {
        std::fs::write(path, report.to_tsv()).map_err(|e| format!("saving {path}: {e}"))?;
        println!("saved: {path}");
    }
    if let Some(path) = &opts.json {
        let meta = BenchMeta {
            profile: cfg.profile.name.to_string(),
            repeat: opts.repeat,
            jobs: cfg.jobs,
            batch: cfg.batch,
            model_check: cfg.model_check,
            cold: opts.cold,
            wall_ns,
            digests_stable,
        };
        std::fs::write(path, render_bench_json(&meta, &report))
            .map_err(|e| format!("saving {path}: {e}"))?;
        println!("json saved: {path}");
    }
    Ok(report.failure_count() == 0 && digests_stable)
}

/// A sweep in which every scenario gets a freshly built case study — and
/// therefore a cold glue cache: nothing derived for one scenario is visible
/// to the next.  This is the "glue cache bypassed" baseline of the E11
/// experiment; per-sweep cache counters are meaningless here (every
/// scenario has its own cache) and reported as zero.  `--batch` is ignored
/// on this path for the same reason: a cold run rebuilds everything per
/// scenario, machines included, so there is nothing to amortise.
fn cold_sweep(
    cases: &[AnyCase],
    source: &dyn ScenarioSource,
    cfg: &SweepConfig,
    broken: bool,
    observer: Option<&SweepObserver>,
) -> SweepReport {
    let tasks: Vec<(&str, u64)> = cases
        .iter()
        .flat_map(|case| {
            source
                .seeds(case.name())
                .into_iter()
                .map(move |seed| (case.name(), seed))
        })
        .collect();
    let records = parallel_map(&tasks, cfg.jobs, |&(name, seed)| {
        let fresh = AnyCase::by_name(name, broken).expect("case names come from AnyCase");
        let record = run_scenario(&fresh, seed, cfg);
        if let Some(observer) = observer {
            // Per-scenario caches make the glue snapshot meaningless here.
            observer.scenario(name, &record, None);
        }
        (name, record)
    });
    let mut report = SweepReport {
        cases: cases
            .iter()
            .map(|c| semint_core::stats::CaseReport::new(c.name()))
            .collect(),
    };
    for (name, record) in &records {
        if let Some(case_report) = report.cases.iter_mut().find(|c| &c.case == name) {
            case_report.absorb(record);
        }
    }
    report
}

/// `semint profile`: offline aggregation of one or more `--trace` files.
fn cmd_profile(args: &[String]) -> Result<bool, String> {
    if args.is_empty() {
        return Err(
            "`semint profile` needs at least one TRACE file written by `sweep --trace` \
             or `bench --trace`"
                .into(),
        );
    }
    let mut profile = TraceProfile::default();
    for path in args {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        absorb_trace(&mut profile, &text).map_err(|e| format!("{path}: {e}"))?;
    }
    if profile.scenarios == 0 && profile.heartbeats == 0 {
        return Err("the given trace files contain no events".into());
    }
    print!("{}", render_profile(&profile));
    Ok(true)
}

/// Largest tolerated `bench-diff` throughput drop relative to the baseline.
const MAX_THROUGHPUT_REGRESSION: f64 = 0.25;

/// `semint bench-diff`: the CI regression gate over two `bench --json`
/// documents.  Fails (exit 1) on any per-case digest drift — the sweep is
/// deterministic, so drift means behaviour changed — or when current
/// throughput falls more than [`MAX_THROUGHPUT_REGRESSION`] below baseline.
fn cmd_bench_diff(args: &[String]) -> Result<bool, String> {
    let [baseline_path, current_path] = args else {
        return Err(
            "`semint bench-diff` needs exactly two paths: BASELINE.json CURRENT.json".into(),
        );
    };
    let load = |path: &String| -> Result<(BenchMeta, SweepReport, BTreeSet<String>), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        parse_bench_json_with_counter_keys(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base_meta, base, base_counter_keys) = load(baseline_path)?;
    let (current_meta, current, _) = load(current_path)?;
    let mut clean = true;
    for base_case in &base.cases {
        let Some(current_case) = current.cases.iter().find(|c| c.case == base_case.case) else {
            clean = false;
            println!("case {}: MISSING from {current_path}", base_case.case);
            continue;
        };
        // Counters are digest-grade facts too, but only the keys the baseline
        // document actually recorded constrain the current run: a counter
        // introduced after the baseline was written (or a pre-counter
        // baseline entirely) reads back as zero and is grandfathered in.
        let counter_drift = !base_case.counters.is_zero()
            && base_case.counters.fields().iter().any(|(key, base_value)| {
                base_counter_keys.contains(*key)
                    && current_case
                        .counters
                        .fields()
                        .iter()
                        .any(|(k, current_value)| k == key && current_value != base_value)
            });
        if current_case.digest() != base_case.digest() {
            clean = false;
            println!(
                "case {}: DIGEST DRIFT\n  baseline {}\n  current  {}",
                base_case.case,
                base_case.digest(),
                current_case.digest()
            );
        } else if counter_drift {
            clean = false;
            println!(
                "case {}: VM COUNTER DRIFT\n  baseline {}\n  current  {}",
                base_case.case, base_case.counters, current_case.counters
            );
        } else {
            println!(
                "case {}: digest OK ({})",
                base_case.case,
                base_case.digest()
            );
        }
    }
    for current_case in &current.cases {
        if !base.cases.iter().any(|c| c.case == current_case.case) {
            clean = false;
            println!(
                "case {}: not in baseline {baseline_path}",
                current_case.case
            );
        }
    }
    let base_tp = base_meta.throughput_per_s(base.scenarios());
    let current_tp = current_meta.throughput_per_s(current.scenarios());
    let floor = base_tp * (1.0 - MAX_THROUGHPUT_REGRESSION);
    println!("throughput: baseline {base_tp:.0}/s, current {current_tp:.0}/s (floor {floor:.0}/s)");
    if current_tp < floor {
        clean = false;
        println!(
            "throughput REGRESSION: more than {:.0}% below baseline",
            MAX_THROUGHPUT_REGRESSION * 100.0
        );
    }
    println!("bench-diff: {}", if clean { "OK" } else { "FAILED" });
    Ok(clean)
}

/// `semint report`: render saved sweeps, merging when several are given
/// (per-shard saves merge into the unsharded digests).  Accepts both the
/// TSV format of `sweep --save` and the JSON format of `bench --json`.
fn cmd_report(args: &[String]) -> Result<bool, String> {
    if args.is_empty() {
        return Err("`semint report` needs at least one PATH saved by \
                    `semint sweep --save` or `semint bench --json`"
            .into());
    }
    let mut merged: Option<SweepReport> = None;
    for path in args {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let report = if looks_like_bench_json(&text) {
            let (meta, report) = parse_bench_json(&text).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "bench: profile {} · {} repeats · jobs {} · batch {} · model check {} · \
                 glue cache {} · best wall-clock {:.3} s ({:.0} scenarios/s) · \
                 digests stable: {}",
                meta.profile,
                meta.repeat,
                meta.jobs,
                meta.batch,
                if meta.model_check { "on" } else { "off" },
                if meta.cold {
                    "cold per scenario"
                } else {
                    "shared"
                },
                meta.wall_ns as f64 / 1e9,
                meta.throughput_per_s(report.scenarios()),
                if meta.digests_stable { "yes" } else { "NO" }
            );
            report
        } else {
            SweepReport::from_tsv(&text).map_err(|e| format!("{path}: {e}"))?
        };
        match &mut merged {
            None => merged = Some(report),
            Some(acc) => acc.merge(&report),
        }
    }
    let report = merged.expect("at least one path");
    print!("{}", render_sweep(&report));
    for case in &report.cases {
        println!("digest: {}", case.digest());
    }
    Ok(report.failure_count() == 0)
}

/// `semint serve`: the foreground sweep-orchestration daemon.  Runs until a
/// client sends `semint submit --shutdown`, then drains the queue and exits.
fn cmd_serve(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let worker_binary = std::env::current_exe()
        .map_err(|e| format!("cannot locate the semint binary to spawn workers: {e}"))?;
    let worker_timeout_ms = opts.worker_timeout_ms.unwrap_or(30_000);
    let cfg = ServeConfig {
        port: opts.port,
        workers: opts.workers,
        queue_capacity: opts.queue_capacity,
        heartbeat_timeout: Duration::from_millis(worker_timeout_ms),
        max_retries: opts.max_retries,
        worker_binary,
        log_path: opts.log.as_ref().map(PathBuf::from),
        echo: true,
        state_dir: opts.state_dir.as_ref().map(PathBuf::from),
        resume: opts.resume,
    };
    let daemon = Daemon::spawn(cfg)?;
    let port = daemon.port();
    println!(
        "semint serve: listening on 127.0.0.1:{port} · {} workers · queue capacity {} · \
         worker timeout {} ms · {} retries per shard",
        opts.workers, opts.queue_capacity, worker_timeout_ms, opts.max_retries
    );
    if let Some(dir) = &opts.state_dir {
        println!(
            "durable state: {dir} (fsync'd job journal + shard checkpoints; \
             recover with `semint serve --state-dir {dir} --resume`)"
        );
    }
    println!("submit jobs:   semint submit --port {port} --seeds A..B [--profile NAME]");
    println!("watch them:    semint status --port {port} [--job N --wait]");
    println!("drain + exit:  semint submit --port {port} --shutdown");
    daemon.join();
    println!("semint serve: drained, exiting");
    Ok(true)
}

/// The daemon address the serve-client subcommands talk to.
fn daemon_addr(opts: &Options) -> String {
    format!("127.0.0.1:{}", opts.port)
}

/// `semint submit`: queue one sweep job on a running daemon (or, with
/// `--shutdown`, drain it).
fn cmd_submit(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let addr = daemon_addr(&opts);
    if opts.shutdown {
        return match serve::call(&addr, &Request::Shutdown)? {
            Response::Ok => {
                println!("daemon at {addr} is draining: accepted jobs finish, then it exits");
                Ok(true)
            }
            Response::Error(e) => Err(e),
            other => Err(format!("unexpected response: {other:?}")),
        };
    }
    // Everything a worker cannot faithfully reconstruct from the wire is
    // rejected here rather than silently dropped.
    if opts.profile.name == "custom" {
        return Err(
            "serve jobs pin preset profiles (smoke | default | deep | boundary-heavy); \
             knob overrides like --type-depth do not travel over the wire"
                .into(),
        );
    }
    if opts.shard.is_some() {
        return Err("the daemon shards jobs itself; use --shards N instead of --shard K/N".into());
    }
    if opts.corpus_load.is_some() || opts.corpus_save.is_some() {
        return Err("corpus replay/persistence is not supported for serve jobs".into());
    }
    if opts.broken {
        return Err("--broken is not supported for serve jobs".into());
    }
    let fault = match (opts.fault_shard, opts.fault_after) {
        (None, None) => {
            if opts.fault_kind.is_some() {
                return Err("--fault-kind needs --fault-shard and --fault-after".into());
            }
            None
        }
        (Some(shard), Some(after)) => Some(FaultPlan {
            shard,
            after,
            kind: opts.fault_kind.unwrap_or(FaultKind::Crash),
        }),
        _ => return Err("--fault-shard and --fault-after must be given together".into()),
    };
    let spec = JobSpec {
        seeds: opts.range,
        profile: opts.profile.name.to_string(),
        case: opts.case.clone(),
        shards: opts.shards,
        jobs: opts.jobs,
        batch: opts.batch,
        model_check: opts.model_check.unwrap_or(true),
        fault,
    };
    match serve::call(&addr, &Request::Submit(spec))? {
        Response::Submitted { job } => {
            println!("job {job} queued at {addr} (follow it: semint status --port {} --job {job} --wait)", opts.port);
            Ok(true)
        }
        Response::Error(e) => Err(e),
        other => Err(format!("unexpected response: {other:?}")),
    }
}

/// Renders one job's status snapshot: the one-line summary always, plus the
/// full rolling/final report when this job was singled out with `--job`.
fn print_job_status(status: &JobStatus, detailed: bool) -> Result<(), String> {
    let mut line = format!(
        "job {}: {} · shards {}/{} · {} scenarios · {} failures",
        status.id,
        status.state,
        status.shards_done,
        status.shards_total,
        status.scenarios,
        status.failures
    );
    if status.retries > 0 {
        line.push_str(&format!(" · {} shard re-issues", status.retries));
    }
    if status.recovered {
        line.push_str(" · recovered");
    }
    println!("{line}");
    if let Some(error) = &status.error {
        println!("  error: {error}");
    }
    if !detailed {
        return Ok(());
    }
    let report = SweepReport::from_tsv(&status.report_tsv)
        .map_err(|e| format!("job {}: daemon sent an unreadable report: {e}", status.id))?;
    if status.state == "done" {
        print!("{}", render_sweep(&report));
        for digest in &status.digests {
            println!("digest: {digest}");
        }
    } else {
        print!(
            "{}",
            render_rolling(&report, status.shards_done, status.shards_total)
        );
    }
    Ok(())
}

/// `semint status`: job states and rolling merged digests; `--wait` polls
/// one job to completion.
fn cmd_status(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    let addr = daemon_addr(&opts);
    if opts.wait && opts.job.is_none() {
        return Err("--wait follows one job; give --job N".into());
    }
    loop {
        let (draining, jobs) = match serve::call(&addr, &Request::Status { job: opts.job })? {
            Response::Status { draining, jobs } => (draining, jobs),
            Response::Error(e) => return Err(e),
            other => return Err(format!("unexpected response: {other:?}")),
        };
        let settled = jobs
            .iter()
            .all(|job| matches!(job.state.as_str(), "done" | "failed"));
        if opts.wait && !settled {
            std::thread::sleep(Duration::from_millis(200));
            continue;
        }
        if draining {
            println!("daemon at {addr} is draining");
        }
        if jobs.is_empty() {
            println!("no jobs at {addr}");
        }
        for job in &jobs {
            print_job_status(job, opts.job.is_some())?;
        }
        if let Some(path) = &opts.save {
            let job = opts
                .job
                .and_then(|_| jobs.first())
                .ok_or("--save writes one job's merged report; give --job N")?;
            std::fs::write(path, &job.report_tsv).map_err(|e| format!("saving {path}: {e}"))?;
            println!("saved: {path}");
        }
        let clean = jobs
            .iter()
            .all(|job| job.state != "failed" && job.failures == 0);
        return Ok(clean);
    }
}

/// `semint chaos`: the deterministic kill-and-resume drill.  Every round
/// derives a fault plan and a kill point from `--seed`, runs a faulted job
/// on a real daemon process, SIGKILLs the daemon once the journal shows the
/// scheduled number of checkpoints, restarts it with `--resume`, and
/// asserts the resumed digests and VM counters are byte-identical to an
/// uninterrupted one-shot sweep — with no checkpointed shard re-run.
fn cmd_chaos(args: &[String]) -> Result<bool, String> {
    let opts = parse_options(args)?;
    // The same wire restrictions as `submit`: the drill's jobs travel over
    // the real protocol.
    if opts.profile.name == "custom" {
        return Err(
            "chaos jobs pin preset profiles (smoke | default | deep | boundary-heavy); \
             knob overrides like --type-depth do not travel over the wire"
                .into(),
        );
    }
    if opts.shard.is_some() {
        return Err("chaos shards its jobs itself; use --shards N instead of --shard K/N".into());
    }
    if opts.corpus_load.is_some() || opts.corpus_save.is_some() {
        return Err("corpus replay/persistence is not supported for chaos jobs".into());
    }
    if opts.broken {
        return Err("--broken is not supported for chaos jobs".into());
    }
    let binary = std::env::current_exe()
        .map_err(|e| format!("cannot locate the semint binary to drill: {e}"))?;
    let state_root = match &opts.state_dir {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("semint-chaos-{}", std::process::id())),
    };
    let cfg = ChaosConfig {
        binary,
        seed: opts.seed.unwrap_or(0),
        rounds: opts.rounds,
        seeds: opts.range,
        profile: opts.profile.name.to_string(),
        case: opts.case.clone(),
        shards: if opts.shards == 0 {
            opts.workers as u64
        } else {
            opts.shards
        },
        jobs: opts.jobs,
        workers: opts.workers,
        batch: opts.batch,
        // Drills inject wedges on purpose; detect them fast.
        worker_timeout_ms: opts.worker_timeout_ms.unwrap_or(5_000),
        state_root,
        echo: true,
    };
    println!(
        "chaos: {} rounds · seed {} · seeds {}..{} · profile {} · {} shards · state root {}",
        cfg.rounds,
        cfg.seed,
        cfg.seeds.0,
        cfg.seeds.1,
        cfg.profile,
        cfg.shards,
        cfg.state_root.display()
    );
    let outcomes = serve::run_drills(&cfg)?;
    let mut clean = true;
    for outcome in &outcomes {
        let held = outcome.invariant_holds();
        clean = clean && held;
        println!(
            "round {}: {} · fault {} on shard {} after {} scenarios · killed after {} \
             checkpoints (shards {:?} saved) · {} re-issues · digests {} · counters {} · \
             re-run after resume {:?} · state {}",
            outcome.round,
            if held { "PASS" } else { "FAIL" },
            outcome.plan.kind.label(),
            outcome.plan.shard,
            outcome.plan.after,
            outcome.kill_after_saves,
            outcome.saved_before_kill,
            outcome.retries,
            if outcome.digests_match {
                "match"
            } else {
                "DIVERGE"
            },
            if outcome.counters_match {
                "match"
            } else {
                "DIVERGE"
            },
            outcome.rerun_after_resume,
            outcome.state_dir.display(),
        );
    }
    if clean {
        println!(
            "chaos: all {} rounds held the crash-safety invariant",
            outcomes.len()
        );
    } else {
        println!("chaos: INVARIANT VIOLATED — post-mortems in the per-round state dirs above");
    }
    Ok(clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_options(&owned)
    }

    #[test]
    fn reversed_seed_ranges_are_rejected_with_a_friendly_error() {
        let err = parse(&["--seeds", "50..10"]).unwrap_err();
        assert!(err.contains("reversed"), "{err}");
        // No panic (debug-build underflow) either way round.
        let err = parse(&["--seeds", "7..7"]).unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn well_formed_seed_ranges_parse() {
        let opts = parse(&["--seeds", "3..9"]).unwrap();
        assert_eq!(opts.range, (3, 9));
    }

    #[test]
    fn time_flag_enables_stage_timing() {
        assert!(!parse(&[]).unwrap().time);
        let opts = parse(&["--time"]).unwrap();
        assert!(opts.time);
        assert!(sweep_config(&opts, true).time);
    }

    #[test]
    fn unknown_options_are_rejected() {
        assert!(parse(&["--nope"]).unwrap_err().contains("--nope"));
    }

    #[test]
    fn batch_sizes_parse_and_zero_is_rejected_not_clamped() {
        assert_eq!(parse(&[]).unwrap().batch, 1, "default is one per machine");
        let opts = parse(&["--batch", "8"]).unwrap();
        assert_eq!(opts.batch, 8);
        assert_eq!(sweep_config(&opts, true).batch, 8);
        let err = parse(&["--batch", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["--batch", "many"]).unwrap_err();
        assert!(err.contains("--batch"), "{err}");
        assert!(parse(&["--batch"]).unwrap_err().contains("--batch"));
    }

    #[test]
    fn profiles_parse_and_unknown_profiles_are_rejected() {
        let opts = parse(&["--profile", "deep"]).unwrap();
        assert_eq!(opts.profile, GenProfile::deep());
        let err = parse(&["--profile", "turbo"]).unwrap_err();
        assert!(err.contains("turbo") && err.contains("deep"), "{err}");
    }

    #[test]
    fn knob_overrides_apply_on_top_of_the_profile_in_any_flag_order() {
        let a = parse(&["--profile", "deep", "--boundary-bias", "60"]).unwrap();
        let b = parse(&["--boundary-bias", "60", "--profile", "deep"]).unwrap();
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.profile.boundary_bias, 60);
        assert_eq!(a.profile.type_depth, GenProfile::deep().type_depth);
        assert_eq!(a.profile.name, "custom");
    }

    #[test]
    fn invalid_profile_knobs_are_friendly_errors_not_clamps() {
        let err = parse(&["--boundary-bias", "250"]).unwrap_err();
        assert!(err.contains("0-100"), "{err}");
        let err = parse(&["--fuel", "0"]).unwrap_err();
        assert!(err.contains("fuel"), "{err}");
        let err = parse(&["--type-depth", "0"]).unwrap_err();
        assert!(err.contains("type depth"), "{err}");
        let err = parse(&["--weights", "0,0,0"]).unwrap_err();
        assert!(err.contains("weights"), "{err}");
        let err = parse(&["--weights", "1,2"]).unwrap_err();
        assert!(err.contains("L,B,W"), "{err}");
    }

    #[test]
    fn shards_parse_and_validate() {
        let opts = parse(&["--shard", "1/4"]).unwrap();
        assert_eq!(opts.shard, Some((1, 4)));
        assert!(parse(&["--shard", "4/4"])
            .unwrap_err()
            .contains("out of range"));
        assert!(parse(&["--shard", "0/0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--shard", "nonsense"]).unwrap_err().contains("K/N"));
    }

    #[test]
    fn corpus_load_excludes_seeds_shard_and_profile() {
        let err = parse(&["--corpus-load", "x.corpus", "--shard", "0/2"]).unwrap_err();
        assert!(err.contains("corpus"), "{err}");
        let err = parse(&["--corpus-load", "x.corpus", "--profile", "deep"]).unwrap_err();
        assert!(err.contains("corpus"), "{err}");
        let err = parse(&["--corpus-load", "x.corpus", "--seeds", "0..10"]).unwrap_err();
        assert!(err.contains("corpus"), "{err}");
        // Knob overrides without --profile are also meaningless with a
        // corpus, but harmless: the pinned profile wins inside the engine.
        assert!(parse(&["--corpus-load", "x.corpus"]).is_ok());
    }

    #[test]
    fn oversized_weights_are_rejected_not_overflowed() {
        let err = parse(&["--weights", "3000000000,3000000000,1"]).unwrap_err();
        assert!(err.contains("at or below"), "{err}");
    }

    #[test]
    fn sweeps_larger_than_the_engine_cap_get_a_friendly_error() {
        // 4M seeds pass the per-range CLI check but exceed the cap once
        // multiplied across the three case studies.
        let cases = AnyCase::all(false);
        let source = SeedRange::new(0, 4_000_000).unwrap();
        let err = check_sweep_size(&cases, &source).unwrap_err();
        assert!(err.contains("exceeds the per-sweep limit"), "{err}");
        let small = SeedRange::new(0, 100).unwrap();
        assert!(check_sweep_size(&cases, &small).is_ok());
    }

    #[test]
    fn bench_flags_parse() {
        let opts = parse(&["--repeat", "5", "--cold", "--model-check"]).unwrap();
        assert_eq!(opts.repeat, 5);
        assert!(opts.cold);
        assert_eq!(opts.model_check, Some(true));
        assert!(parse(&["--repeat", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn json_flag_parses_and_needs_a_path() {
        let opts = parse(&["--json", "bench.json"]).unwrap();
        assert_eq!(opts.json.as_deref(), Some("bench.json"));
        assert!(parse(&["--json"]).unwrap_err().contains("--json"));
    }

    #[test]
    fn trace_and_progress_flags_parse() {
        let opts = parse(&[]).unwrap();
        assert!(opts.trace.is_none() && !opts.progress);
        let opts = parse(&["--trace", "t.jsonl", "--progress"]).unwrap();
        assert_eq!(opts.trace.as_deref(), Some("t.jsonl"));
        assert!(opts.progress);
        assert!(parse(&["--trace"]).unwrap_err().contains("--trace"));
    }

    #[test]
    fn bench_diff_needs_exactly_two_paths() {
        assert!(cmd_bench_diff(&[]).unwrap_err().contains("BASELINE"));
        assert!(cmd_bench_diff(&["one.json".into()])
            .unwrap_err()
            .contains("exactly two"));
    }

    #[test]
    fn profile_needs_at_least_one_trace() {
        assert!(cmd_profile(&[]).unwrap_err().contains("TRACE"));
    }

    #[test]
    fn serve_flags_parse_with_documented_defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.port, DEFAULT_PORT);
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.queue_capacity, 16);
        assert_eq!(
            opts.worker_timeout_ms, None,
            "tri-state: serve resolves to 30000, chaos to 5000"
        );
        assert_eq!(opts.max_retries, 2);
        assert_eq!(opts.shards, 0, "0 = one shard per daemon worker");
        assert!(opts.job.is_none() && !opts.wait && !opts.shutdown);
        let opts = parse(&[
            "--port",
            "0",
            "--workers",
            "2",
            "--queue-capacity",
            "3",
            "--worker-timeout-ms",
            "5000",
            "--max-retries",
            "1",
            "--log",
            "serve.log",
            "--shards",
            "6",
            "--job",
            "4",
            "--wait",
            "--shutdown",
        ])
        .unwrap();
        assert_eq!(opts.port, 0);
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.queue_capacity, 3);
        assert_eq!(opts.worker_timeout_ms, Some(5000));
        assert_eq!(opts.max_retries, 1);
        assert_eq!(opts.log.as_deref(), Some("serve.log"));
        assert_eq!(opts.shards, 6);
        assert_eq!(opts.job, Some(4));
        assert!(opts.wait && opts.shutdown);
        assert!(parse(&["--workers", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--queue-capacity", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--worker-timeout-ms", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn fault_injection_flags_parse_and_zero_die_after_is_rejected() {
        let opts = parse(&["--fault-shard", "1", "--fault-after", "5"]).unwrap();
        assert_eq!(opts.fault_shard, Some(1));
        assert_eq!(opts.fault_after, Some(5));
        assert_eq!(opts.fault_kind, None, "submit defaults the kind to crash");
        let opts = parse(&["--die-after", "3"]).unwrap();
        assert_eq!(opts.die_after, Some(3));
        assert!(parse(&["--die-after", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn crash_safety_flags_parse_and_validate() {
        let opts = parse(&[]).unwrap();
        assert!(opts.state_dir.is_none() && !opts.resume);
        assert_eq!(opts.rounds, 1);
        assert!(opts.fault_kind.is_none());
        assert!(opts.wedge_after.is_none() && opts.corrupt_save.is_none());
        let opts = parse(&[
            "--state-dir",
            "state",
            "--resume",
            "--rounds",
            "3",
            "--fault-kind",
            "wedge",
            "--wedge-after",
            "4",
            "--corrupt-save",
            "truncate",
        ])
        .unwrap();
        assert_eq!(opts.state_dir.as_deref(), Some("state"));
        assert!(opts.resume);
        assert_eq!(opts.rounds, 3);
        assert_eq!(opts.fault_kind, Some(FaultKind::Wedge));
        assert_eq!(opts.wedge_after, Some(4));
        assert_eq!(opts.corrupt_save.as_deref(), Some("truncate"));
        assert!(parse(&["--rounds", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--wedge-after", "0"])
            .unwrap_err()
            .contains("at least 1"));
        let err = parse(&["--fault-kind", "segfault"]).unwrap_err();
        assert!(err.contains("fault kind"), "{err}");
        let err = parse(&["--corrupt-save", "zero-out"]).unwrap_err();
        assert!(err.contains("garbage"), "{err}");
    }

    #[test]
    fn submit_and_chaos_reject_unwireable_combinations_up_front() {
        let err = cmd_submit(&["--fault-kind".into(), "wedge".into()]).unwrap_err();
        assert!(err.contains("--fault-shard"), "{err}");
        // Chaos validation happens before any daemon or baseline is built.
        let err = cmd_chaos(&["--type-depth".into(), "5".into()]).unwrap_err();
        assert!(err.contains("preset"), "{err}");
        let err = cmd_chaos(&["--shard".into(), "0/2".into()]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = cmd_chaos(&["--corpus-load".into(), "x.corpus".into()]).unwrap_err();
        assert!(err.contains("corpus"), "{err}");
        let err = cmd_chaos(&["--broken".into()]).unwrap_err();
        assert!(err.contains("--broken"), "{err}");
        // Sweep refuses --corrupt-save with nothing to corrupt.
        let err = cmd_sweep(&["--corrupt-save".into(), "garbage".into()]).unwrap_err();
        assert!(err.contains("--save"), "{err}");
    }

    #[test]
    fn unknown_commands_suggest_the_closest_subcommand() {
        let hint = unknown_command("swep");
        assert!(hint.contains("did you mean `sweep`?"), "{hint}");
        let hint = unknown_command("stauts");
        assert!(hint.contains("did you mean `status`?"), "{hint}");
        let hint = unknown_command("benchdiff");
        assert!(hint.contains("did you mean `bench-diff`?"), "{hint}");
        // Gibberish gets the plain error, not a far-fetched hint.
        let hint = unknown_command("xyzzyqwert");
        assert!(!hint.contains("did you mean"), "{hint}");
        assert!(hint.contains("semint help"), "{hint}");
    }

    #[test]
    fn edit_distance_is_the_usual_levenshtein() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("swep", "sweep"), 1);
    }

    #[test]
    fn wait_requires_a_job_and_submit_rejects_unwireable_options() {
        let err = cmd_status(&["--wait".into(), "--port".into(), "1".into()]).unwrap_err();
        assert!(err.contains("--job"), "{err}");
        // Validation happens before any connection attempt, so these fail
        // fast even with no daemon listening.
        let err = cmd_submit(&["--type-depth".into(), "5".into()]).unwrap_err();
        assert!(err.contains("preset"), "{err}");
        let err = cmd_submit(&["--shard".into(), "0/2".into()]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = cmd_submit(&["--corpus-load".into(), "x.corpus".into()]).unwrap_err();
        assert!(err.contains("corpus"), "{err}");
        let err = cmd_submit(&["--broken".into()]).unwrap_err();
        assert!(err.contains("--broken"), "{err}");
        let err = cmd_submit(&["--fault-shard".into(), "1".into()]).unwrap_err();
        assert!(err.contains("together"), "{err}");
    }

    #[test]
    fn build_source_picks_range_or_shard() {
        let opts = parse(&["--seeds", "0..12"]).unwrap();
        let source = build_source(&opts).unwrap();
        assert_eq!(source.seeds("any").len(), 12);
        let opts = parse(&["--seeds", "0..12", "--shard", "0/3"]).unwrap();
        let source = build_source(&opts).unwrap();
        assert_eq!(source.seeds("any"), vec![0, 3, 6, 9]);
    }
}
