//! Machine-readable bench results: the `semint bench --json PATH` format.
//!
//! Future PRs track a performance trajectory across commits, which needs the
//! per-stage totals, throughput and digests in a format a script can diff —
//! not the aligned human rendering.  The writer and parser here are
//! hand-rolled (the workspace is offline; no serde), matching the corpus
//! format's no-deps style: [`render_bench_json`] emits one self-describing
//! JSON document, and [`parse_bench_json`] reads it back into the same
//! [`SweepReport`] aggregates, so `semint report` renders saved JSON benches
//! exactly like saved TSV sweeps and a round trip preserves every digest.

use semint_core::stats::{CaseReport, FailStage, FailureRecord, StageTimings, SweepReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The current version of every JSON document this crate writes: the bench
/// format here, the `semint serve` wire protocol, and the daemon's durable
/// job journal all stamp their documents with `"version": FORMAT_VERSION`
/// so the one format can evolve.
/// Parsers tolerate an *absent* field (the v1 documents written before the
/// field existed) and reject versions newer than they understand.
pub const FORMAT_VERSION: u64 = 2;

/// Reads the shared `version` field of a parsed document: absent means v1,
/// anything above [`FORMAT_VERSION`] is from a newer writer and rejected.
pub(crate) fn document_version(doc: &Json) -> Result<u64, String> {
    let version = match doc.get("version") {
        None => 1,
        Some(value) => value.as_u64("version")?,
    };
    if version > FORMAT_VERSION {
        return Err(format!(
            "document version {version} is newer than this binary understands \
             (up to {FORMAT_VERSION}); upgrade semint"
        ));
    }
    Ok(version)
}

/// The sweep-independent facts of one bench invocation, carried alongside
/// the per-case aggregates in the JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeta {
    /// The generation profile's name.
    pub profile: String,
    /// How many repeats ran (the document carries the best one).
    pub repeat: usize,
    /// Worker threads.
    pub jobs: usize,
    /// Compiled artifacts executed per reused machine (`--batch N`; 1 means
    /// one machine per scenario).
    pub batch: usize,
    /// Whether the realizability-model stage ran.
    pub model_check: bool,
    /// Whether the glue cache was bypassed (`--cold`).
    pub cold: bool,
    /// Best-repeat wall clock in nanoseconds.
    pub wall_ns: u64,
    /// Whether every repeat produced identical digests.
    pub digests_stable: bool,
}

impl BenchMeta {
    /// Scenarios per second over the best repeat's wall clock.
    pub fn throughput_per_s(&self, scenarios: u64) -> f64 {
        scenarios as f64 / (self.wall_ns as f64 / 1e9).max(1e-9)
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a bench report as a JSON document (pretty-printed, stable key
/// order, trailing newline).
pub fn render_bench_json(meta: &BenchMeta, report: &SweepReport) -> String {
    let scenarios = report.scenarios();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"semint_bench\": 1,");
    let _ = writeln!(out, "  \"version\": {FORMAT_VERSION},");
    let _ = writeln!(out, "  \"profile\": \"{}\",", escape_json(&meta.profile));
    let _ = writeln!(out, "  \"repeat\": {},", meta.repeat);
    let _ = writeln!(out, "  \"jobs\": {},", meta.jobs);
    let _ = writeln!(out, "  \"batch\": {},", meta.batch);
    let _ = writeln!(out, "  \"model_check\": {},", meta.model_check);
    let _ = writeln!(out, "  \"cold\": {},", meta.cold);
    let _ = writeln!(out, "  \"wall_ns\": {},", meta.wall_ns);
    let _ = writeln!(out, "  \"scenarios\": {scenarios},");
    let _ = writeln!(
        out,
        "  \"throughput_per_s\": {:.1},",
        meta.throughput_per_s(scenarios)
    );
    let _ = writeln!(out, "  \"digests_stable\": {},", meta.digests_stable);
    out.push_str("  \"cases\": [\n");
    for (idx, case) in report.cases.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"case\": \"{}\",", escape_json(&case.case));
        let _ = writeln!(out, "      \"scenarios\": {},", case.scenarios);
        let _ = writeln!(out, "      \"total_steps\": {},", case.total_steps);
        let _ = writeln!(
            out,
            "      \"total_boundaries\": {},",
            case.total_boundaries
        );
        let _ = writeln!(
            out,
            "      \"total_program_chars\": {},",
            case.total_program_chars
        );
        let _ = writeln!(out, "      \"glue_hits\": {},", case.glue_hits);
        let _ = writeln!(out, "      \"glue_misses\": {},", case.glue_misses);
        out.push_str("      \"counters\": {");
        for (i, (key, value)) in case.counters.fields().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{key}\": {value}");
        }
        out.push_str("},\n");
        let _ = writeln!(out, "      \"failures\": {},", case.failures.len());
        out.push_str("      \"outcomes\": {");
        for (i, (label, count)) in case.outcome_histogram.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {count}", escape_json(label));
        }
        out.push_str("},\n");
        if let Some(timings) = &case.timings {
            out.push_str("      \"stages_ns\": {");
            for (i, (label, ns)) in timings.stages().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{label}\": {ns}");
            }
            out.push_str("},\n");
        }
        let _ = writeln!(out, "      \"digest\": \"{}\"", escape_json(&case.digest()));
        out.push_str(if idx + 1 < report.cases.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// A minimal JSON reader — just enough for the document the writer emits
// (objects, arrays, strings, numbers, booleans), with friendly errors.

/// A parsed JSON value.  Numbers keep their source text so integer fields
/// round-trip without a float detour.  Shared with the trace-profile reader
/// (`semint profile` parses JSONL lines with the same machinery).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// An object, in source order.
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string (escapes resolved).
    Str(String),
    /// A number, as written.
    Num(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn require<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    pub(crate) fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(text) => text
                .parse::<u64>()
                .map_err(|e| format!("{what}: {text:?} is not a non-negative integer ({e})")),
            other => Err(format!("{what}: expected a number, got {other:?}")),
        }
    }

    pub(crate) fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected a boolean, got {other:?}")),
        }
    }

    pub(crate) fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected a string, got {other:?}")),
        }
    }
}

pub(crate) struct Reader<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// 1-based line of the next unconsumed character.
    line: usize,
    /// 1-based column of the next unconsumed character.
    column: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Reader {
            chars: text.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    /// Consumes one character, keeping the line/column cursor current so
    /// parse errors can say where they happened.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.column = 1;
            }
            Some(_) => self.column += 1,
            None => {}
        }
        c
    }

    /// The reader's current position, for error context.
    pub(crate) fn position(&self) -> String {
        format!("line {}, column {}", self.line, self.column)
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, wanted: char) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(c) if c == wanted => Ok(()),
            Some(c) => Err(format!("expected {wanted:?}, found {c:?}")),
            None => Err(format!("expected {wanted:?}, found end of input")),
        }
    }

    pub(crate) fn peek_after_ws(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.peek().copied()
    }

    pub(crate) fn value(&mut self) -> Result<Json, String> {
        match self.peek_after_ws() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(Json::Str),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected character {c:?}")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for wanted in word.chars() {
            match self.bump() {
                Some(c) if c == wanted => {}
                other => return Err(format!("malformed literal `{word}` (at {other:?})")),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Validate through the float grammar; integer consumers re-parse.
        text.parse::<f64>()
            .map_err(|e| format!("malformed number {text:?}: {e}"))?;
        Ok(Json::Num(text))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("malformed \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        if self.peek_after_ws() == Some('}') {
            self.bump();
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek_after_ws() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {
                    self.bump();
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        if self.peek_after_ws() == Some(']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek_after_ws() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
            }
        }
    }
}

/// Parses a document produced by [`render_bench_json`], rebuilding the
/// [`SweepReport`] aggregates (failure counts are restored as placeholder
/// records, like the TSV reader) and verifying the recorded per-case digest
/// still matches the re-computed one.
pub fn parse_bench_json(text: &str) -> Result<(BenchMeta, SweepReport), String> {
    parse_bench_json_with_counter_keys(text).map(|(meta, report, _)| (meta, report))
}

/// Like [`parse_bench_json`], but additionally returns the set of counter
/// keys the document actually carried.  `semint bench-diff` compares
/// counters key by key against this set: a baseline written before a counter
/// existed reads the counter back as zero, which must not register as drift
/// against a current run that records it.
pub fn parse_bench_json_with_counter_keys(
    text: &str,
) -> Result<(BenchMeta, SweepReport, std::collections::BTreeSet<String>), String> {
    let mut reader = Reader::new(text);
    let doc = match reader.value() {
        Ok(doc) => doc,
        Err(e) => return Err(format!("{} ({e})", reader.position())),
    };
    if let Some(trailing) = reader.peek_after_ws() {
        return Err(format!(
            "{}: trailing content after document: {trailing:?}",
            reader.position()
        ));
    }
    doc.require("semint_bench")?
        .as_u64("semint_bench")
        .and_then(|v| match v {
            1 => Ok(()),
            other => Err(format!("unsupported semint_bench version {other}")),
        })?;
    document_version(&doc)?;
    let meta = BenchMeta {
        profile: doc.require("profile")?.as_str("profile")?.to_string(),
        repeat: doc.require("repeat")?.as_u64("repeat")? as usize,
        jobs: doc.require("jobs")?.as_u64("jobs")? as usize,
        // Documents written before batched execution carry no batch size;
        // they ran one scenario per machine.
        batch: match doc.get("batch") {
            Some(value) => value.as_u64("batch")? as usize,
            None => 1,
        },
        model_check: doc.require("model_check")?.as_bool("model_check")?,
        cold: doc.require("cold")?.as_bool("cold")?,
        wall_ns: doc.require("wall_ns")?.as_u64("wall_ns")?,
        digests_stable: doc.require("digests_stable")?.as_bool("digests_stable")?,
    };
    let Json::Array(cases) = doc.require("cases")? else {
        return Err("\"cases\": expected an array".into());
    };
    let mut report = SweepReport::default();
    let mut counter_keys = std::collections::BTreeSet::new();
    for entry in cases {
        let mut case = CaseReport::new(entry.require("case")?.as_str("case")?);
        case.scenarios = entry.require("scenarios")?.as_u64("scenarios")?;
        case.total_steps = entry.require("total_steps")?.as_u64("total_steps")?;
        case.total_boundaries = entry
            .require("total_boundaries")?
            .as_u64("total_boundaries")?;
        case.total_program_chars = entry
            .require("total_program_chars")?
            .as_u64("total_program_chars")?;
        case.glue_hits = entry.require("glue_hits")?.as_u64("glue_hits")?;
        case.glue_misses = entry.require("glue_misses")?.as_u64("glue_misses")?;
        // Documents written before VM telemetry carry no counters object;
        // their counters stay zero.
        if let Some(Json::Object(counters)) = entry.get("counters") {
            for (key, value) in counters {
                if !case.counters.set_field(key, value.as_u64(key)?) {
                    return Err(format!("\"counters\": unknown counter {key:?}"));
                }
                counter_keys.insert(key.clone());
            }
        }
        let Json::Object(outcomes) = entry.require("outcomes")? else {
            return Err("\"outcomes\": expected an object".into());
        };
        let mut histogram = BTreeMap::new();
        for (label, count) in outcomes {
            histogram.insert(label.clone(), count.as_u64(label)?);
        }
        case.outcome_histogram = histogram;
        if let Some(Json::Object(stages)) = entry.get("stages_ns") {
            let mut timings = StageTimings::default();
            for (label, ns) in stages {
                timings.set_stage(label, ns.as_u64(label)?)?;
            }
            case.timings = Some(timings);
        }
        for _ in 0..entry.require("failures")?.as_u64("failures")? {
            case.failures.push(FailureRecord {
                seed: 0,
                stage: FailStage::ModelCheck,
                reason: "(not serialised)".into(),
                witness: String::new(),
                shrunk: String::new(),
                shrink_steps: 0,
            });
        }
        let recorded = entry.require("digest")?.as_str("digest")?;
        if recorded != case.digest() {
            return Err(format!(
                "case {}: recorded digest does not match the aggregates\n  recorded: {recorded}\n  computed: {}",
                case.case,
                case.digest()
            ));
        }
        report.cases.push(case);
    }
    Ok((meta, report, counter_keys))
}

/// True when `text` looks like a bench JSON document rather than a TSV
/// report (`semint report` accepts both).
pub fn looks_like_bench_json(text: &str) -> bool {
    text.trim_start().starts_with('{')
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::stats::{OutcomeClass, RunStats, ScenarioRecord};

    fn sample_report() -> SweepReport {
        let mut case = CaseReport::new("sharedmem");
        for seed in 0..5u64 {
            case.absorb(&ScenarioRecord {
                seed,
                ty: "bool".into(),
                program_chars: 12,
                boundaries: 3,
                stats: Some(RunStats {
                    outcome: if seed == 0 {
                        OutcomeClass::OutOfFuel
                    } else {
                        OutcomeClass::Value
                    },
                    steps: 10 + seed,
                    counters: semint_core::VmCounters {
                        instr_data: 6 + seed,
                        instr_control: 2,
                        instr_fun: 1,
                        instr_heap: 1 + seed,
                        boundary_crossings: 3,
                        heap_allocs: 1 + seed,
                        heap_frees: seed,
                        heap_reuses: seed / 2,
                        heap_peak_live: 1 + seed,
                        stack_peak: 4,
                    },
                }),
                failure: None,
                timings: Some(StageTimings {
                    generate_ns: 5,
                    typecheck_ns: 4,
                    compile_ns: 3,
                    run_ns: 2,
                    model_check_ns: 1,
                }),
            });
        }
        case.glue_hits = 40;
        case.glue_misses = 2;
        SweepReport { cases: vec![case] }
    }

    fn sample_meta() -> BenchMeta {
        BenchMeta {
            profile: "deep".into(),
            repeat: 3,
            jobs: 2,
            batch: 8,
            model_check: true,
            cold: false,
            wall_ns: 250_000_000,
            digests_stable: true,
        }
    }

    #[test]
    fn bench_json_round_trips_every_digest_and_stage_total() {
        let report = sample_report();
        let meta = sample_meta();
        let text = render_bench_json(&meta, &report);
        assert!(looks_like_bench_json(&text));
        let (parsed_meta, parsed) = parse_bench_json(&text).expect("round trip");
        assert_eq!(parsed_meta, meta);
        assert_eq!(parsed_meta.batch, 8);
        assert_eq!(parsed.cases.len(), 1);
        assert_eq!(parsed.cases[0].digest(), report.cases[0].digest());
        assert_eq!(parsed.cases[0].timings, report.cases[0].timings);
        assert_eq!(parsed.cases[0].glue_hits, 40);
        assert_eq!(parsed.cases[0].glue_misses, 2);
        assert_eq!(
            parsed.cases[0].outcome_histogram,
            report.cases[0].outcome_histogram
        );
        assert_eq!(parsed.cases[0].counters, report.cases[0].counters);
    }

    #[test]
    fn documents_without_counters_default_to_zero() {
        let text = render_bench_json(&sample_meta(), &sample_report());
        let start = text.find("      \"counters\": {").expect("counters line");
        let end = text[start..].find('\n').expect("line end") + start + 1;
        let legacy = format!("{}{}", &text[..start], &text[end..]);
        assert_ne!(text, legacy, "the sample must contain the counters field");
        let (_, parsed) = parse_bench_json(&legacy).expect("legacy documents still parse");
        assert!(parsed.cases[0].counters.is_zero());
    }

    #[test]
    fn counter_keys_reflect_what_the_document_carried() {
        let text = render_bench_json(&sample_meta(), &sample_report());
        let (_, _, keys) = parse_bench_json_with_counter_keys(&text).expect("parse");
        assert!(keys.contains("heap_frees"));
        assert!(keys.contains("instr_data"));
        // A baseline written before a counter existed does not list it.
        let legacy = text
            .replace("\"heap_frees\": 10, ", "")
            .replace("\"heap_reuses\": 4, ", "");
        assert_ne!(text, legacy, "the sample must carry the new counters");
        let (_, report, keys) = parse_bench_json_with_counter_keys(&legacy).expect("parse legacy");
        assert!(!keys.contains("heap_frees"));
        assert!(keys.contains("heap_allocs"));
        assert_eq!(report.cases[0].counters.heap_frees, 0, "absent reads zero");
    }

    #[test]
    fn tampered_aggregates_fail_the_recorded_digest_check() {
        let text = render_bench_json(&sample_meta(), &sample_report());
        let tampered = text.replace("\"total_steps\": 60", "\"total_steps\": 61");
        assert_ne!(text, tampered, "the sample must contain the edited field");
        let err = parse_bench_json(&tampered).unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn malformed_documents_are_friendly_errors() {
        assert!(parse_bench_json("").is_err());
        assert!(parse_bench_json("{").unwrap_err().contains("end of input"));
        assert!(parse_bench_json("{}").unwrap_err().contains("semint_bench"));
        assert!(parse_bench_json("{\"semint_bench\": 2, \"cases\": []}")
            .unwrap_err()
            .contains("version"));
        let text = render_bench_json(&sample_meta(), &sample_report());
        assert!(parse_bench_json(&format!("{text} garbage"))
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn version_field_round_trips_and_future_versions_are_rejected() {
        let text = render_bench_json(&sample_meta(), &sample_report());
        assert!(text.contains(&format!("\"version\": {FORMAT_VERSION}")));
        // Absent version = a v1 document written before the field existed.
        let legacy = text.replace(&format!("  \"version\": {FORMAT_VERSION},\n"), "");
        assert_ne!(text, legacy, "the sample must carry the version field");
        assert!(parse_bench_json(&legacy).is_ok());
        // A newer writer's document is rejected with an upgrade hint.
        let future = text.replace(&format!("\"version\": {FORMAT_VERSION}"), "\"version\": 99");
        let err = parse_bench_json(&future).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn parse_errors_carry_line_and_column_context() {
        let err = parse_bench_json("{\n  \"semint_bench\": 1,\n  oops\n}").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let err = parse_bench_json("{\"semint_bench\": 1, }").unwrap_err();
        assert!(err.contains("column"), "{err}");
    }

    #[test]
    fn documents_without_a_batch_size_default_to_one_per_machine() {
        let text = render_bench_json(&sample_meta(), &sample_report());
        let legacy = text.replace("  \"batch\": 8,\n", "");
        assert_ne!(text, legacy, "the sample must contain the batch field");
        let (meta, _) = parse_bench_json(&legacy).expect("legacy documents still parse");
        assert_eq!(meta.batch, 1);
    }

    #[test]
    fn strings_with_special_characters_survive() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let mut reader = Reader::new("\"a\\\"b\\\\c\\nd\\u0041\"");
        assert_eq!(reader.string().unwrap(), "a\"b\\c\ndA");
    }

    #[test]
    fn throughput_is_scenarios_over_wall_seconds() {
        let meta = sample_meta();
        let per_s = meta.throughput_per_s(1000);
        assert!((per_s - 4000.0).abs() < 1e-6, "{per_s}");
    }
}
