//! # semint-harness
//!
//! The unified scenario engine over all three case studies.
//!
//! The paper instantiates its framework once per language pair; the
//! reproduction's case-study crates each expose the same pipeline shape
//! (generate → typecheck → compile → run → model-check) through the
//! [`CaseStudy`] trait in `semint-core`.  This crate supplies everything
//! generic on top of that trait:
//!
//! * [`source`] — the [`source::ScenarioSource`] abstraction over *where a
//!   sweep's workload comes from*: a seed range, a deterministic k-of-n
//!   [`source::Shard`] of one (sweeps compose across processes), or a
//!   persisted, replayable [`source::Corpus`] with its generation profile
//!   pinned;
//! * [`engine`] — a parallel batch runner with deterministic per-task seed
//!   splitting and a work-stealing thread pool (std threads + mutex deques,
//!   no external dependencies), producing the shared
//!   [`CaseReport`] aggregates; tasks are contiguous `--batch N` groups of
//!   same-case scenarios whose compiled artifacts execute through **one**
//!   reused machine ([`CaseStudy::execute_batch`]), digest-identically to
//!   per-scenario execution;
//! * [`shrink`] — greedy structural counterexample shrinking for scenarios
//!   that fail type safety or model checking;
//! * [`cases`] — the [`cases::AnyCase`] dispatcher that erases the three
//!   case studies into one task type so a single pool can interleave all of
//!   them;
//! * [`report`] — plain-text rendering of sweep reports for the `semint`
//!   CLI binary shipped by this crate (`run`, `check`, `sweep`, `bench`,
//!   `report` subcommands);
//! * [`json`] — the hand-rolled machine-readable bench format behind
//!   `semint bench --json PATH` (and `semint report`'s ability to read it
//!   back), for tracking per-stage performance across commits;
//! * [`trace`] — Tier-B telemetry: the `--trace` JSONL event stream
//!   (dedicated writer thread behind a bounded channel) and the
//!   `--progress` live stderr line, both strictly observational — traced
//!   and untraced sweeps agree on digests and counters byte for byte;
//! * [`profile`] — `semint profile`'s order-insensitive aggregation of
//!   trace files: stage breakdowns, per-case opcode-class histograms,
//!   allocation stats, and the hottest seeds by steps;
//! * [`serve`] — the `semint serve` daemon: a bounded FIFO queue of sweep
//!   jobs, a supervisor that drives each job as a fleet of `semint sweep
//!   --shard` child processes (re-issuing the exact slice of any worker
//!   that crashes or wedges), and a rolling merge whose final digests are
//!   byte-identical to a one-shot sweep; the wire protocol is hand-rolled
//!   line-JSON over localhost TCP. With `--state-dir` the daemon is
//!   crash-safe: an fsync'd job journal plus checkpointed shard reports
//!   let `--resume` restore every job after a kill, and `semint chaos`
//!   drills exactly that with seed-derived fault schedules.
//!
//! ## Example
//!
//! ```
//! use semint_harness::cases::AnyCase;
//! use semint_harness::engine::{sweep_all, SweepConfig};
//! use semint_harness::source::SeedRange;
//!
//! let cases = AnyCase::all(false);
//! let source = SeedRange::new(0, 16).unwrap();
//! let cfg = SweepConfig { jobs: 2, ..SweepConfig::default() };
//! let report = sweep_all(&cases, &source, &cfg);
//! assert_eq!(report.scenarios(), 48); // 16 seeds × 3 case studies
//! assert_eq!(report.failure_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cases;
pub mod engine;
pub mod json;
pub mod profile;
pub mod report;
pub mod serve;
pub mod shrink;
pub mod source;
pub mod trace;

pub use cases::{AnyCase, AnyCompiled};
pub use engine::{sweep_all, sweep_all_observed, sweep_case, sweep_case_observed, SweepConfig};
pub use profile::{render_profile, TraceProfile};
pub use semint_core::case::{CaseStudy, CheckFailure, GenProfile, Scenario};
pub use semint_core::stats::{CaseReport, SweepReport};
pub use serve::{Daemon, ServeConfig};
pub use source::{Corpus, ScenarioSource, SeedRange, Shard};
pub use trace::SweepObserver;
