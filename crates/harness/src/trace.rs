//! Tier-B telemetry: the `--trace` JSONL event stream and the `--progress`
//! live stderr line.
//!
//! Tier A (the deterministic [`semint_core::VmCounters`]) is digest-grade
//! and always on; this module is the *observational* tier.  A
//! [`SweepObserver`] is handed to the observed sweep entry points
//! ([`crate::engine::sweep_all_observed`]) and receives one callback per
//! finished scenario, from whichever worker finished it.  Observation never
//! feeds back into results: the headline guarantee is that a traced sweep's
//! digests and counters are byte-identical to an untraced one, which the
//! integration suite asserts.
//!
//! The trace is written by a **dedicated writer thread** fed through a
//! bounded channel, so workers never block on disk I/O (they block only on
//! backpressure when the writer falls behind, which bounds memory instead
//! of growing an unbounded queue).  Each event is one self-contained JSON
//! line; event *order across workers* is scheduling-dependent by design —
//! `semint profile` aggregates order-insensitively.

use crate::json::escape_json;
use semint_core::stats::ScenarioRecord;
use semint_core::GlueCacheStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

/// Capacity of the worker → writer-thread channel.  Full means workers
/// briefly block on `send` (backpressure) rather than queueing without
/// bound.
pub const TRACE_CHANNEL_CAPACITY: usize = 1024;

/// A `sweep-progress` heartbeat event is interleaved into the trace every
/// this many finished scenarios.
pub const HEARTBEAT_EVERY: u64 = 64;

/// The `--progress` stderr line redraws at most this often.
const PROGRESS_MIN_INTERVAL_US: u64 = 100_000;

/// Exit code of a process killed by `--die-after` fault injection, chosen to
/// collide with nothing the CLI returns itself (0/1/2).  `semint serve`'s
/// supervisor treats it like any other crash — that is the point: the flag
/// exists so supervision tests can kill a shard worker mid-sweep
/// deterministically.
pub const FAULT_EXIT_CODE: i32 = 42;

/// Shared observation sink for one sweep: counts scenarios as workers
/// finish them, streams JSONL events to the trace writer thread, and
/// renders the rolling progress line.  `Sync` — one instance is shared by
/// every worker in the pool.
pub struct SweepObserver {
    total: u64,
    started: Instant,
    done: AtomicU64,
    safe: AtomicU64,
    glue: Mutex<BTreeMap<String, GlueCacheStats>>,
    trace: Option<TraceWriter>,
    progress: bool,
    last_render_us: AtomicU64,
    /// `--die-after N` fault injection: abort the whole process with
    /// [`FAULT_EXIT_CODE`] once this many scenarios have finished.
    die_after: Option<u64>,
    /// `--wedge-after N` fault injection: the worker thread that finishes
    /// the `n`-th scenario never returns, and this flag mutes all further
    /// progress output so the process as a whole goes silent.
    wedge_after: Option<u64>,
    wedged: AtomicBool,
}

struct TraceWriter {
    /// `SyncSender` is `!Sync`, so the shared observer hands it to workers
    /// through a mutex; the send itself is nearly free (the writer thread
    /// owns all buffering and I/O).
    sender: Mutex<SyncSender<String>>,
    handle: JoinHandle<io::Result<()>>,
}

impl SweepObserver {
    /// Creates an observer for a sweep expected to run `total` scenarios.
    /// `trace_path` opens (truncating) the JSONL trace file and spawns the
    /// writer thread; `progress` enables the rolling stderr line.
    pub fn new(total: u64, trace_path: Option<&Path>, progress: bool) -> io::Result<SweepObserver> {
        let trace = match trace_path {
            None => None,
            Some(path) => {
                let file = File::create(path)?;
                let (sender, receiver) = sync_channel::<String>(TRACE_CHANNEL_CAPACITY);
                let handle = std::thread::spawn(move || -> io::Result<()> {
                    let mut out = BufWriter::new(file);
                    for line in receiver {
                        out.write_all(line.as_bytes())?;
                    }
                    out.flush()
                });
                Some(TraceWriter {
                    sender: Mutex::new(sender),
                    handle,
                })
            }
        };
        Ok(SweepObserver {
            total,
            started: Instant::now(),
            done: AtomicU64::new(0),
            safe: AtomicU64::new(0),
            glue: Mutex::new(BTreeMap::new()),
            trace,
            progress,
            last_render_us: AtomicU64::new(0),
            die_after: None,
            wedge_after: None,
            wedged: AtomicBool::new(false),
        })
    }

    /// Arms `--die-after N` fault injection: the process aborts with
    /// [`FAULT_EXIT_CODE`] the moment the `n`-th scenario finishes, leaving
    /// any `--save` file unwritten — from a supervisor's point of view, a
    /// genuine mid-sweep crash.  `None` disarms (the default).
    pub fn with_fault(mut self, die_after: Option<u64>) -> SweepObserver {
        self.die_after = die_after;
        self
    }

    /// Arms `--wedge-after N` fault injection: the worker thread that
    /// finishes the `n`-th scenario goes silent and never returns, and all
    /// further progress output is muted — the process keeps running but
    /// stops heartbeating, so a supervisor's only remedy is its heartbeat
    /// timeout.  `None` disarms (the default).
    pub fn with_wedge(mut self, wedge_after: Option<u64>) -> SweepObserver {
        self.wedge_after = wedge_after;
        self
    }

    /// Records one finished scenario.  `glue` is the case's *cumulative*
    /// cache snapshot at observation time (observational, not digest-grade:
    /// concurrent workers may interleave between execution and snapshot).
    pub fn scenario(&self, case: &str, record: &ScenarioRecord, glue: Option<GlueCacheStats>) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.die_after == Some(done) {
            eprintln!("[fault] --die-after {done}: aborting mid-sweep (injected crash)");
            std::process::exit(FAULT_EXIT_CODE);
        }
        if self.wedge_after == Some(done) {
            // One farewell beat, then total silence: other pool threads
            // keep sweeping but the wedged flag mutes their progress, and
            // this thread never returns — the process cannot finish, write
            // its report, or exit.  Only a heartbeat timeout catches it.
            eprintln!("[fault] --wedge-after {done}: worker going silent (injected wedge)");
            self.wedged.store(true, Ordering::SeqCst);
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        if record.failure.is_none() {
            self.safe.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(snapshot) = glue {
            self.glue
                .lock()
                .expect("glue snapshots poisoned")
                .insert(case.to_string(), snapshot);
        }
        if self.trace.is_some() {
            self.emit(scenario_line(case, record, glue.as_ref()));
            if done.is_multiple_of(HEARTBEAT_EVERY) {
                self.emit(self.progress_line(done));
            }
        }
        if self.progress && !self.wedged.load(Ordering::Relaxed) {
            self.render_progress(done, false);
        }
    }

    /// Finishes the observation: emits the final heartbeat, settles the
    /// progress line, closes the channel, and joins the writer thread,
    /// surfacing any I/O error the writer hit.
    pub fn finish(self) -> io::Result<()> {
        let done = self.done.load(Ordering::Relaxed);
        if self.trace.is_some() {
            self.emit(self.progress_line(done));
        }
        if self.progress {
            self.render_progress(done, true);
            eprintln!();
        }
        if let Some(writer) = self.trace {
            drop(writer.sender.into_inner().expect("trace sender poisoned"));
            return writer.handle.join().expect("trace writer thread panicked");
        }
        Ok(())
    }

    fn emit(&self, line: String) {
        if let Some(writer) = &self.trace {
            // A dead writer thread (e.g. the disk filled up) just drops
            // events; the sweep itself never fails because tracing did.
            let _ = writer
                .sender
                .lock()
                .expect("trace sender poisoned")
                .send(line);
        }
    }

    fn progress_line(&self, done: u64) -> String {
        format!(
            "{{\"event\":\"sweep-progress\",\"done\":{done},\"total\":{},\"safe\":{},\"elapsed_us\":{}}}\n",
            self.total,
            self.safe.load(Ordering::Relaxed),
            self.started.elapsed().as_micros()
        )
    }

    fn render_progress(&self, done: u64, force: bool) {
        let elapsed_us = (self.started.elapsed().as_micros() as u64).max(1);
        if !force {
            let last = self.last_render_us.load(Ordering::Relaxed);
            if elapsed_us.saturating_sub(last) < PROGRESS_MIN_INTERVAL_US
                || self
                    .last_render_us
                    .compare_exchange(last, elapsed_us, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
            {
                return;
            }
        }
        let safe = self.safe.load(Ordering::Relaxed);
        let (hits, misses) = {
            let glue = self.glue.lock().expect("glue snapshots poisoned");
            glue.values()
                .fold((0u64, 0u64), |(h, m), s| (h + s.hits, m + s.misses))
        };
        let rate = done as f64 / (elapsed_us as f64 / 1e6);
        let safe_pct = if done > 0 {
            100.0 * safe as f64 / done as f64
        } else {
            100.0
        };
        let hit_pct = if hits + misses > 0 {
            100.0 * hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let eta_s = if done > 0 && self.total > done {
            (self.total - done) as f64 / rate.max(1e-9)
        } else {
            0.0
        };
        eprint!(
            "\r[sweep] {done}/{} scenarios  {rate:.0}/s  safe {safe_pct:.1}%  glue hit {hit_pct:.1}%  eta {eta_s:.0}s   ",
            self.total
        );
        let _ = io::stderr().flush();
    }
}

/// Renders one finished scenario as a single JSONL `scenario` event.
/// Pre-run rejections (no [`ScenarioRecord::stats`]) report outcome
/// `"rejected"` with zero steps and zero counters; `stage_us` appears only
/// on timed sweeps, `glue` only for cases with a conversion cache.
pub fn scenario_line(case: &str, record: &ScenarioRecord, glue: Option<&GlueCacheStats>) -> String {
    let mut line = String::with_capacity(256);
    let _ = write!(
        line,
        "{{\"event\":\"scenario\",\"case\":\"{}\",\"seed\":{},\"boundaries\":{},\"program_chars\":{}",
        escape_json(case),
        record.seed,
        record.boundaries,
        record.program_chars
    );
    match &record.stats {
        Some(stats) => {
            let _ = write!(
                line,
                ",\"outcome\":\"{}\",\"steps\":{}",
                escape_json(&stats.outcome.to_string()),
                stats.steps
            );
            line.push_str(",\"counters\":{");
            for (i, (key, value)) in stats.counters.fields().iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "\"{key}\":{value}");
            }
            line.push('}');
        }
        None => line.push_str(",\"outcome\":\"rejected\",\"steps\":0,\"counters\":{}"),
    }
    let _ = write!(line, ",\"safe\":{}", record.failure.is_none());
    if let Some(failure) = &record.failure {
        let _ = write!(
            line,
            ",\"fail_stage\":\"{}\"",
            escape_json(&failure.stage.to_string())
        );
    }
    if let Some(timings) = &record.timings {
        line.push_str(",\"stage_us\":{");
        for (i, (label, ns)) in timings.stages().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{label}\":{}", ns / 1000);
        }
        line.push('}');
    }
    if let Some(snapshot) = glue {
        let _ = write!(
            line,
            ",\"glue\":{{\"hits\":{},\"misses\":{}}}",
            snapshot.hits, snapshot.misses
        );
    }
    line.push_str("}\n");
    line
}

/// Renders one `semint serve` lifecycle event as a single JSONL line, the
/// same one-event-per-line idiom as the sweep trace: `{"event":"shard-start",
/// "t_ms":12,"job":0,"shard":"1/4","attempt":"0"}`.  `detail` pairs are
/// emitted in order as string fields.
pub fn serve_event_line(
    event: &str,
    t_ms: u64,
    job: Option<u64>,
    detail: &[(&str, String)],
) -> String {
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"event\":\"{}\",\"t_ms\":{t_ms}",
        escape_json(event)
    );
    if let Some(job) = job {
        let _ = write!(line, ",\"job\":{job}");
    }
    for (key, value) in detail {
        let _ = write!(line, ",\"{}\":\"{}\"", escape_json(key), escape_json(value));
    }
    line.push_str("}\n");
    line
}

/// The daemon's structured activity stream: one JSONL event per lifecycle
/// transition (job queued, shard started, shard crashed, slice re-issued,
/// job done…), flushed per event so `tail -f` and the CI artifact both see
/// a live log.  With `echo` on, every event is mirrored to stdout in a
/// human-readable form — the interactive face of `semint serve`.
pub struct ServeLog {
    file: Option<Mutex<BufWriter<File>>>,
    echo: bool,
    started: Instant,
}

impl ServeLog {
    /// Opens the log (truncating `path` when given).  `echo` mirrors events
    /// to stdout.
    pub fn new(path: Option<&Path>, echo: bool) -> io::Result<ServeLog> {
        let file = match path {
            None => None,
            Some(path) => Some(Mutex::new(BufWriter::new(File::create(path)?))),
        };
        Ok(ServeLog {
            file,
            echo,
            started: Instant::now(),
        })
    }

    /// Records one event.  Logging is observational: I/O errors are
    /// swallowed so a full disk never takes the daemon down.
    pub fn event(&self, event: &str, job: Option<u64>, detail: &[(&str, String)]) {
        let t_ms = self.started.elapsed().as_millis() as u64;
        if let Some(file) = &self.file {
            let line = serve_event_line(event, t_ms, job, detail);
            let mut out = file.lock().expect("serve log poisoned");
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
        if self.echo {
            let mut human = String::new();
            if let Some(job) = job {
                let _ = write!(human, "job {job}: ");
            }
            human.push_str(event);
            for (key, value) in detail {
                let _ = write!(human, " {key}={value}");
            }
            println!("[serve] {human}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::stats::{OutcomeClass, RunStats, StageTimings};
    use semint_core::VmCounters;

    fn sample_record(seed: u64) -> ScenarioRecord {
        ScenarioRecord {
            seed,
            ty: "bool".into(),
            program_chars: 9,
            boundaries: 2,
            stats: Some(RunStats {
                outcome: OutcomeClass::Value,
                steps: 11,
                counters: VmCounters {
                    instr_data: 7,
                    instr_control: 1,
                    instr_fun: 2,
                    instr_heap: 1,
                    boundary_crossings: 2,
                    heap_allocs: 1,
                    heap_frees: 1,
                    heap_reuses: 0,
                    heap_peak_live: 1,
                    stack_peak: 3,
                },
            }),
            failure: None,
            timings: Some(StageTimings {
                generate_ns: 9_000,
                typecheck_ns: 8_000,
                compile_ns: 7_000,
                run_ns: 6_000,
                model_check_ns: 5_000,
            }),
        }
    }

    #[test]
    fn scenario_lines_are_single_json_lines_with_counters() {
        let glue = GlueCacheStats {
            hits: 4,
            misses: 2,
            entries: 3,
        };
        let line = scenario_line("sharedmem", &sample_record(5), Some(&glue));
        assert!(line.ends_with("}\n"));
        assert_eq!(line.matches('\n').count(), 1, "one event per line");
        assert!(line.contains("\"event\":\"scenario\""));
        assert!(line.contains("\"seed\":5"));
        assert!(line.contains("\"instr_data\":7"));
        assert!(line.contains("\"glue\":{\"hits\":4,\"misses\":2}"));
        assert!(line.contains("\"stage_us\":{"));
        assert!(line.contains("\"safe\":true"));
    }

    #[test]
    fn rejected_scenarios_trace_with_zero_steps() {
        let mut record = sample_record(3);
        record.stats = None;
        record.timings = None;
        record.failure = Some(semint_core::stats::FailureRecord {
            seed: 3,
            stage: semint_core::stats::FailStage::Typecheck,
            reason: "claimed bool, checked int".into(),
            witness: "w".into(),
            shrunk: "w".into(),
            shrink_steps: 0,
        });
        let line = scenario_line("affine", &record, None);
        assert!(line.contains("\"outcome\":\"rejected\""));
        assert!(line.contains("\"steps\":0"));
        assert!(line.contains("\"safe\":false"));
        assert!(line.contains("\"fail_stage\":\"typecheck\""));
        assert!(!line.contains("stage_us"));
    }

    #[test]
    fn serve_event_lines_are_single_json_lines() {
        let line = serve_event_line(
            "shard-retry",
            37,
            Some(4),
            &[("shard", "1/4".into()), ("attempt", "1".into())],
        );
        assert_eq!(line.matches('\n').count(), 1, "one event per line");
        assert!(line.contains("\"event\":\"shard-retry\""));
        assert!(line.contains("\"t_ms\":37"));
        assert!(line.contains("\"job\":4"));
        assert!(line.contains("\"shard\":\"1/4\""));
        let bare = serve_event_line("drained", 1, None, &[]);
        assert!(!bare.contains("\"job\""));
    }

    #[test]
    fn serve_log_writes_flushed_jsonl_events() {
        let path = std::env::temp_dir().join(format!(
            "semint-serve-log-test-{}.jsonl",
            std::process::id()
        ));
        let log = ServeLog::new(Some(&path), false).expect("log file");
        log.event("job-queued", Some(0), &[("seeds", "0..10".into())]);
        log.event("job-done", Some(0), &[]);
        // Flushed per event: readable before the log is dropped.
        let text = std::fs::read_to_string(&path).expect("log written");
        drop(log);
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"event\":\"job-queued\""));
        assert!(lines[1].contains("\"event\":\"job-done\""));
    }

    #[test]
    fn observer_writes_a_parseable_trace_and_counts_scenarios() {
        let path =
            std::env::temp_dir().join(format!("semint-trace-test-{}.jsonl", std::process::id()));
        let observer = SweepObserver::new(2, Some(&path), false).expect("trace file");
        observer.scenario("sharedmem", &sample_record(0), None);
        observer.scenario("sharedmem", &sample_record(1), None);
        observer.finish().expect("writer thread");
        let text = std::fs::read_to_string(&path).expect("trace written");
        let _ = std::fs::remove_file(&path);
        let events: Vec<&str> = text.lines().collect();
        // Two scenario events plus the final heartbeat.
        assert_eq!(events.len(), 3, "{text}");
        assert!(events[2].contains("\"event\":\"sweep-progress\""));
        assert!(events[2].contains("\"done\":2"));
        assert!(events[2].contains("\"safe\":2"));
    }
}
