//! `semint profile`: offline aggregation of `--trace` JSONL streams.
//!
//! Trace files are observational — event order across workers is
//! scheduling-dependent — so everything here aggregates order-insensitively
//! with the same rules the digest-grade counters use (counts add,
//! high-water marks take the max).  A profile over one trace therefore
//! reports the *same* per-case counter totals the sweep's own report did,
//! which the integration suite asserts as the trace round-trip property.

use crate::json::{Json, Reader};
use semint_core::VmCounters;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How many hottest seeds (by machine steps) a profile keeps.
pub const TOP_SEEDS: usize = 10;

/// Order-insensitive aggregates over one or more trace streams.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceProfile {
    /// `scenario` events seen.
    pub scenarios: u64,
    /// `sweep-progress` heartbeats seen.
    pub heartbeats: u64,
    /// Scenarios that passed every stage (`"safe":true`).
    pub safe: u64,
    /// Per-case aggregates, keyed by case name.
    pub cases: BTreeMap<String, CaseProfile>,
    /// Per-stage microseconds summed across all scenario events (present
    /// only when the traced sweep was timed).
    pub stage_us: BTreeMap<String, u64>,
    /// The [`TOP_SEEDS`] hottest seeds by steps, hottest first.
    pub hottest: Vec<HotSeed>,
}

/// One case study's share of a [`TraceProfile`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CaseProfile {
    /// Scenario events for this case.
    pub scenarios: u64,
    /// Safe scenarios for this case.
    pub safe: u64,
    /// Machine steps summed over the case's scenarios.
    pub steps: u64,
    /// VM counters folded with the digest-grade rules (counts add, peaks
    /// max), so they match the sweep's own [`semint_core::CaseReport`].
    pub counters: VmCounters,
    /// Outcome-class histogram.
    pub outcomes: BTreeMap<String, u64>,
    /// Latest glue-cache snapshot seen for the case (cumulative counters,
    /// so the maximum across events is the end-of-sweep figure).
    pub glue_hits: u64,
    /// See [`CaseProfile::glue_hits`].
    pub glue_misses: u64,
}

/// One entry of the hottest-seeds leaderboard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSeed {
    /// The case study the seed belongs to.
    pub case: String,
    /// The scenario seed.
    pub seed: u64,
    /// Machine steps the scenario consumed.
    pub steps: u64,
}

/// Folds one trace stream (the text of a `--trace` JSONL file) into
/// `profile`.  Call once per file to aggregate several traces; blank lines
/// are skipped, malformed lines are errors naming the line number.
pub fn absorb_trace(profile: &mut TraceProfile, text: &str) -> Result<(), String> {
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        absorb_event(profile, line).map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    Ok(())
}

fn absorb_event(profile: &mut TraceProfile, line: &str) -> Result<(), String> {
    let mut reader = Reader::new(line);
    let doc = reader.value()?;
    if reader.peek_after_ws().is_some() {
        return Err("trailing content after event".into());
    }
    match doc.require("event")?.as_str("event")? {
        "sweep-progress" => {
            profile.heartbeats += 1;
            Ok(())
        }
        "scenario" => absorb_scenario(profile, &doc),
        other => Err(format!("unknown event {other:?}")),
    }
}

fn absorb_scenario(profile: &mut TraceProfile, doc: &Json) -> Result<(), String> {
    let case_name = doc.require("case")?.as_str("case")?;
    let seed = doc.require("seed")?.as_u64("seed")?;
    let steps = doc.require("steps")?.as_u64("steps")?;
    let outcome = doc.require("outcome")?.as_str("outcome")?;
    let safe = doc.require("safe")?.as_bool("safe")?;
    let mut counters = VmCounters::new();
    if let Some(Json::Object(fields)) = doc.get("counters") {
        for (key, value) in fields {
            // Unknown counter names are tolerated (a newer writer may know
            // more classes); known ones must be numbers.
            let _ = counters.set_field(key, value.as_u64(key)?);
        }
    }

    profile.scenarios += 1;
    if safe {
        profile.safe += 1;
    }
    let case = profile.cases.entry(case_name.to_string()).or_default();
    case.scenarios += 1;
    if safe {
        case.safe += 1;
    }
    case.steps += steps;
    case.counters.absorb(&counters);
    *case.outcomes.entry(outcome.to_string()).or_insert(0) += 1;
    if let Some(glue) = doc.get("glue") {
        // Snapshots are cumulative; the largest one seen is the latest.
        case.glue_hits = case.glue_hits.max(glue.require("hits")?.as_u64("hits")?);
        case.glue_misses = case
            .glue_misses
            .max(glue.require("misses")?.as_u64("misses")?);
    }
    if let Some(Json::Object(stages)) = doc.get("stage_us") {
        for (label, us) in stages {
            *profile.stage_us.entry(label.clone()).or_insert(0) += us.as_u64(label)?;
        }
    }

    let entry = HotSeed {
        case: case_name.to_string(),
        seed,
        steps,
    };
    let leaderboard = &mut profile.hottest;
    leaderboard.push(entry);
    // Steps descending, then (case, seed) ascending, so the leaderboard is
    // identical no matter how worker scheduling ordered the events.
    leaderboard.sort_by(|a, b| {
        b.steps
            .cmp(&a.steps)
            .then_with(|| a.case.cmp(&b.case))
            .then_with(|| a.seed.cmp(&b.seed))
    });
    leaderboard.truncate(TOP_SEEDS);
    Ok(())
}

/// Renders a profile as an aligned plain-text block.
pub fn render_profile(profile: &TraceProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace profile: {} scenarios ({} safe), {} heartbeats",
        profile.scenarios, profile.safe, profile.heartbeats
    );
    if !profile.stage_us.is_empty() {
        out.push_str("stage totals\n");
        let total: u64 = profile.stage_us.values().sum();
        for (label, us) in &profile.stage_us {
            let pct = if total > 0 {
                100.0 * *us as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {label:<14} {:>10.3} ms  ({pct:>5.1}%)",
                *us as f64 / 1_000.0
            );
        }
    }
    for (name, case) in &profile.cases {
        let _ = writeln!(out, "case {name}");
        let _ = writeln!(
            out,
            "  scenarios {}  safe {}  steps {}",
            case.scenarios, case.safe, case.steps
        );
        let c = &case.counters;
        let _ = writeln!(
            out,
            "  opcode classes   data {}  control {}  fun {}  heap {}",
            c.instr_data, c.instr_control, c.instr_fun, c.instr_heap
        );
        let _ = writeln!(
            out,
            "  allocation       allocs {}  frees {}  reuses {}  peak live {}  stack peak {}",
            c.heap_allocs, c.heap_frees, c.heap_reuses, c.heap_peak_live, c.stack_peak
        );
        let _ = writeln!(out, "  boundaries       {}", c.boundary_crossings);
        if case.glue_hits + case.glue_misses > 0 {
            let _ = writeln!(
                out,
                "  glue cache       {} hits / {} misses",
                case.glue_hits, case.glue_misses
            );
        }
        out.push_str("  outcomes        ");
        for (label, count) in &case.outcomes {
            let _ = write!(out, " {label} {count}");
        }
        out.push('\n');
    }
    if !profile.hottest.is_empty() {
        out.push_str("hottest seeds by steps\n");
        for (rank, hot) in profile.hottest.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>2}. {:<10} seed {:<8} {:>8} steps",
                rank + 1,
                hot.case,
                hot.seed,
                hot.steps
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::scenario_line;
    use semint_core::stats::{OutcomeClass, RunStats, ScenarioRecord};

    fn record(seed: u64, steps: u64) -> ScenarioRecord {
        ScenarioRecord {
            seed,
            ty: "bool".into(),
            program_chars: 4,
            boundaries: 1,
            stats: Some(RunStats {
                outcome: OutcomeClass::Value,
                steps,
                counters: VmCounters {
                    instr_data: steps,
                    boundary_crossings: 1,
                    heap_allocs: 2,
                    heap_peak_live: seed + 1,
                    stack_peak: 3,
                    ..VmCounters::default()
                },
            }),
            failure: None,
            timings: None,
        }
    }

    fn sample_trace() -> String {
        let mut text = String::new();
        text.push_str(&scenario_line("sharedmem", &record(0, 10), None));
        text.push_str(&scenario_line("sharedmem", &record(1, 30), None));
        text.push_str(&scenario_line("memgc", &record(2, 20), None));
        text.push_str(
            "{\"event\":\"sweep-progress\",\"done\":3,\"total\":3,\"safe\":3,\"elapsed_us\":77}\n",
        );
        text
    }

    #[test]
    fn profiles_aggregate_with_the_digest_grade_rules() {
        let mut profile = TraceProfile::default();
        absorb_trace(&mut profile, &sample_trace()).expect("well-formed trace");
        assert_eq!(profile.scenarios, 3);
        assert_eq!(profile.safe, 3);
        assert_eq!(profile.heartbeats, 1);
        let shared = &profile.cases["sharedmem"];
        assert_eq!(shared.scenarios, 2);
        assert_eq!(shared.steps, 40);
        assert_eq!(shared.counters.instr_data, 40, "counts add");
        assert_eq!(shared.counters.heap_peak_live, 2, "peaks take the max");
        assert_eq!(shared.outcomes["value"], 2);
        assert_eq!(profile.hottest[0].steps, 30);
        assert_eq!(profile.hottest[0].case, "sharedmem");
    }

    #[test]
    fn aggregation_is_order_insensitive() {
        let forward = sample_trace();
        let reversed: String = forward.lines().rev().map(|l| format!("{l}\n")).collect();
        let mut a = TraceProfile::default();
        let mut b = TraceProfile::default();
        absorb_trace(&mut a, &forward).unwrap();
        absorb_trace(&mut b, &reversed).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_lines_are_errors_naming_the_line() {
        let mut profile = TraceProfile::default();
        let err = absorb_trace(&mut profile, "{\"event\":\"scenario\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = absorb_trace(&mut profile, "{\"event\":\"nope\"}\n").unwrap_err();
        assert!(err.contains("unknown event"), "{err}");
        assert!(absorb_trace(&mut profile, "not json\n").is_err());
    }

    #[test]
    fn rendering_names_every_section() {
        let mut profile = TraceProfile::default();
        absorb_trace(&mut profile, &sample_trace()).unwrap();
        let text = render_profile(&profile);
        assert!(text.contains("trace profile: 3 scenarios"), "{text}");
        assert!(text.contains("case sharedmem"), "{text}");
        assert!(text.contains("opcode classes"), "{text}");
        assert!(text.contains("hottest seeds"), "{text}");
    }
}
