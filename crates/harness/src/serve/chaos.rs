//! `semint chaos` — a deterministic fault-injection drill against a live
//! daemon.
//!
//! Each round derives a [`FaultPlan`] and a kill point from the drill seed
//! (splitmix64 over `seed ^ round`; no clocks, no OS randomness), spawns a
//! real `semint serve --state-dir` process, submits a sweep job carrying
//! the fault, SIGKILLs the daemon once the journal shows the scheduled
//! number of shard checkpoints, restarts it with `--resume`, and waits for
//! the job to finish.  The drill then asserts the subsystem's whole point:
//!
//! 1. the resumed job's per-case digests are byte-identical to an
//!    uninterrupted in-process [`sweep_all`] over the same seeds,
//! 2. its merged [`semint_core::VmCounters`] (and scenario counts) match
//!    that baseline exactly, and
//! 3. no shard that was checkpointed before the kill was started again
//!    after the resume — recovery re-issues only unaccounted slices.
//!
//! Every round gets its own state dir under [`ChaosConfig::state_root`];
//! the journal and `serve.log` are left behind for post-mortems (CI
//! uploads them as artifacts).

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use semint_core::case::GenProfile;
use semint_core::stats::SweepReport;

use super::journal::{self, Journal, JournalEvent, RecoveredOutcome};
use super::protocol::{call, JobStatus, Request, Response};
use super::queue::{FaultKind, FaultPlan, JobSpec};
use crate::cases::AnyCase;
use crate::engine::{sweep_all, SweepConfig};
use crate::source::SeedRange;

/// Everything one chaos run needs: which binary to torture, the sweep
/// shape every round submits, and where per-round state dirs live.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The `semint` binary to run as the daemon (and, transitively, as its
    /// shard workers) — normally the drill's own executable.
    pub binary: PathBuf,
    /// Drill seed: the fault schedule is a pure function of this and the
    /// round index.
    pub seed: u64,
    /// How many kill-and-resume rounds to run.
    pub rounds: u64,
    /// Seed range `[start, end)` each round sweeps.
    pub seeds: (u64, u64),
    /// Preset profile name each round sweeps with.
    pub profile: String,
    /// Case study name, or `all`.
    pub case: String,
    /// Shards per job (the fault schedule picks targets modulo this).
    pub shards: u64,
    /// `--jobs` threads inside each worker (and the in-process baseline).
    pub jobs: usize,
    /// Daemon worker slots.
    pub workers: usize,
    /// `--batch` size inside each worker.
    pub batch: usize,
    /// Heartbeat timeout handed to the daemon: how fast wedged workers are
    /// detected.  Keep it well above a shard's honest runtime.
    pub worker_timeout_ms: u64,
    /// Per-round state dirs (`round0`, `round1`, …) are created in here.
    pub state_root: PathBuf,
    /// Print per-round progress to stdout (the CLI mode; tests stay quiet).
    pub echo: bool,
}

/// What one kill-and-resume round observed.  The drill's verdict is
/// [`DrillOutcome::invariant_holds`]; the rest is post-mortem context.
#[derive(Debug, Clone)]
pub struct DrillOutcome {
    /// Round index (0-based).
    pub round: u64,
    /// The fault this round injected.
    pub plan: FaultPlan,
    /// How many shard checkpoints the round waited for before the kill.
    pub kill_after_saves: u64,
    /// Shards the journal showed checkpointed when the daemon was killed.
    pub saved_before_kill: BTreeSet<u64>,
    /// Checkpointed shards the resumed daemon started *again* — must be
    /// empty, or recovery re-ran work it already had.
    pub rerun_after_resume: BTreeSet<u64>,
    /// Shard re-issues across both daemon lives (the injected fault
    /// guarantees at least one unless the kill pre-empted it).
    pub retries: u64,
    /// Resumed per-case digests == uninterrupted baseline digests.
    pub digests_match: bool,
    /// Resumed per-case `VmCounters` and scenario counts == baseline.
    pub counters_match: bool,
    /// This round's state dir (journal + checkpoints + serve.log).
    pub state_dir: PathBuf,
}

impl DrillOutcome {
    /// The crash-safety invariant: digests and counters byte-identical to
    /// an uninterrupted sweep, with no checkpointed shard re-run.
    pub fn invariant_holds(&self) -> bool {
        self.digests_match && self.counters_match && self.rerun_after_resume.is_empty()
    }
}

/// splitmix64: the standard 64-bit mixer — tiny, seedable, and plenty for
/// deriving fault schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives round `round`'s fault plan and kill point from the drill seed.
/// A pure function: the same `--seed` replays the same schedule.
fn schedule(cfg: &ChaosConfig, round: u64) -> (FaultPlan, u64) {
    let mut state =
        cfg.seed.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ round.wrapping_add(1);
    let kind = FaultKind::ALL[(splitmix64(&mut state) % FaultKind::ALL.len() as u64) as usize];
    let shard = splitmix64(&mut state) % cfg.shards;
    let after = 1 + splitmix64(&mut state) % 5;
    // 0 kills the daemon before any checkpoint lands; shards-1 kills it
    // with only the faulted straggler outstanding.
    let kill_after_saves = splitmix64(&mut state) % cfg.shards;
    (FaultPlan { shard, after, kind }, kill_after_saves)
}

/// A spawned `semint serve` process.  Dropping it *is* the chaos: the
/// child is SIGKILLed, never shut down cleanly.
struct DaemonProc {
    child: Child,
    port: u16,
    drain: Option<std::thread::JoinHandle<()>>,
}

impl DaemonProc {
    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
    }
}

/// Spawns a daemon over `state_dir` and blocks until it prints its
/// listening banner (so the port is known and the socket is live).
fn spawn_daemon(cfg: &ChaosConfig, state_dir: &Path, resume: bool) -> Result<DaemonProc, String> {
    let mut command = Command::new(&cfg.binary);
    command
        .arg("serve")
        .args(["--port", "0"])
        .args(["--workers", &cfg.workers.to_string()])
        .args(["--worker-timeout-ms", &cfg.worker_timeout_ms.to_string()])
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--log")
        .arg(state_dir.join("serve.log"))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if resume {
        command.arg("--resume");
    }
    let mut child = command
        .spawn()
        .map_err(|e| format!("cannot spawn {} serve: {e}", cfg.binary.display()))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let port = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                let status = child.wait().map(|s| s.to_string()).unwrap_or_default();
                return Err(format!(
                    "daemon exited ({status}) before printing its listening address \
                     (see {}/serve.log)",
                    state_dir.display()
                ));
            }
            Ok(_) => {
                if let Some(port) = parse_listen_port(&line) {
                    break port;
                }
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("cannot read the daemon's stdout: {e}"));
            }
        }
    };
    // Keep draining stdout so the daemon's log echo never fills the pipe
    // and wedges the daemon itself — this drill injects faults on purpose,
    // not by accident.
    let drain = std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        let mut stream = reader.into_inner();
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });
    Ok(DaemonProc {
        child,
        port,
        drain: Some(drain),
    })
}

/// Extracts the port from the serve banner (`… listening on 127.0.0.1:N …`).
fn parse_listen_port(line: &str) -> Option<u16> {
    let rest = &line[line.find("127.0.0.1:")? + "127.0.0.1:".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Polls the journal until job 0 has `want` checkpointed shards (or has
/// settled first — a kill point past the job's end degenerates to "kill
/// after completion", which resume must also survive).
fn wait_for_saves(
    state_dir: &Path,
    want: u64,
    deadline: Duration,
) -> Result<BTreeSet<u64>, String> {
    let path = Journal::path_in(state_dir);
    let start = Instant::now();
    loop {
        // A concurrent append can leave a torn final line mid-read; replay
        // tolerates exactly that.
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        if let Ok(state) = journal::replay(&text) {
            if let Some(job) = state.jobs.first() {
                let saved: BTreeSet<u64> = job.saved.keys().copied().collect();
                let settled = job.outcome != RecoveredOutcome::Incomplete;
                if saved.len() as u64 >= want || settled {
                    return Ok(saved);
                }
            }
        }
        if start.elapsed() > deadline {
            return Err(format!(
                "journal {} never showed {want} checkpointed shards",
                path.display()
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Polls `semint status` until the job settles; `Ok` only on `done`.
fn wait_for_job(addr: &str, job: u64, deadline: Duration) -> Result<JobStatus, String> {
    let start = Instant::now();
    loop {
        match call(addr, &Request::Status { job: Some(job) })? {
            Response::Status { jobs, .. } => {
                if let Some(status) = jobs.into_iter().next() {
                    match status.state.as_str() {
                        "done" => return Ok(status),
                        "failed" => {
                            return Err(format!(
                                "job {job} failed: {}",
                                status.error.unwrap_or_else(|| "(no reason)".into())
                            ))
                        }
                        _ => {}
                    }
                }
            }
            Response::Error(e) => return Err(format!("status for job {job} failed: {e}")),
            other => return Err(format!("unexpected status response: {other:?}")),
        }
        if start.elapsed() > deadline {
            return Err(format!("job {job} did not settle within {deadline:?}"));
        }
        std::thread::sleep(Duration::from_millis(150));
    }
}

/// Partitions the journal at its **last** `daemon-resumed` marker and
/// returns (shards checkpointed before it, checkpointed shards started
/// again after it).  The second set non-empty means recovery re-ran work
/// it had already verified.
fn analyze_journal(text: &str) -> Result<(BTreeSet<u64>, BTreeSet<u64>), String> {
    let events: Vec<JournalEvent> = text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| journal::parse_event(line).ok())
        .collect();
    let resume_at = events
        .iter()
        .rposition(|event| matches!(event, JournalEvent::Resumed { .. }))
        .ok_or("the journal holds no daemon-resumed marker; did --resume run?")?;
    let saved_before: BTreeSet<u64> = events[..resume_at]
        .iter()
        .filter_map(|event| match event {
            JournalEvent::ShardSaved { shard, .. } => Some(*shard),
            _ => None,
        })
        .collect();
    let started_after: BTreeSet<u64> = events[resume_at..]
        .iter()
        .filter_map(|event| match event {
            JournalEvent::ShardStarted { shard, .. } => Some(*shard),
            _ => None,
        })
        .collect();
    let rerun = saved_before.intersection(&started_after).copied().collect();
    Ok((saved_before, rerun))
}

/// The uninterrupted truth every round is compared against: an in-process
/// one-shot sweep over the drill's seed range (run-only, like the jobs the
/// drill submits).
fn baseline_report(cfg: &ChaosConfig) -> Result<SweepReport, String> {
    let cases =
        match cfg.case.as_str() {
            "all" => AnyCase::all(false),
            name => vec![AnyCase::by_name(name, false)
                .ok_or_else(|| format!("unknown case study {name:?}"))?],
        };
    let profile = GenProfile::by_name(&cfg.profile)
        .ok_or_else(|| format!("unknown profile {:?} (chaos needs a preset)", cfg.profile))?;
    let range = SeedRange::new(cfg.seeds.0, cfg.seeds.1)?;
    let sweep_cfg = SweepConfig {
        jobs: cfg.jobs,
        profile,
        model_check: false,
        batch: cfg.batch,
        ..SweepConfig::default()
    };
    Ok(sweep_all(&cases, &range, &sweep_cfg))
}

/// Compares the resumed job's merged report against the baseline:
/// per-case digests, scenario counts, and full `VmCounters`.
fn compare(baseline: &SweepReport, status: &JobStatus) -> Result<(bool, bool), String> {
    let expected: Vec<String> = baseline.cases.iter().map(|c| c.digest()).collect();
    let digests_match = status.digests == expected;
    let merged = SweepReport::from_tsv(&status.report_tsv)
        .map_err(|e| format!("the resumed job's report does not parse: {e}"))?;
    let counters_match = merged.cases.len() == baseline.cases.len()
        && merged.cases.iter().zip(&baseline.cases).all(|(got, want)| {
            got.case == want.case
                && got.scenarios == want.scenarios
                && got.counters == want.counters
        });
    Ok((digests_match, counters_match))
}

/// One kill-and-resume round: fresh state dir, fresh daemon, one faulted
/// job, a SIGKILL at the scheduled checkpoint count, a `--resume` restart,
/// and the invariance checks.
fn run_round(
    cfg: &ChaosConfig,
    baseline: &SweepReport,
    round: u64,
) -> Result<DrillOutcome, String> {
    let (plan, kill_after_saves) = schedule(cfg, round);
    let state_dir = cfg.state_root.join(format!("round{round}"));
    std::fs::create_dir_all(&state_dir)
        .map_err(|e| format!("cannot create {}: {e}", state_dir.display()))?;
    if cfg.echo {
        println!(
            "chaos round {round}: fault {} on shard {} after {} scenarios, \
             kill after {kill_after_saves} checkpoints",
            plan.kind.label(),
            plan.shard,
            plan.after
        );
    }

    let spec = JobSpec {
        seeds: cfg.seeds,
        profile: cfg.profile.clone(),
        case: cfg.case.clone(),
        shards: cfg.shards,
        jobs: cfg.jobs,
        batch: cfg.batch,
        model_check: false,
        fault: Some(plan),
    };
    let daemon = spawn_daemon(cfg, &state_dir, false)?;
    let job = match call(&daemon.addr(), &Request::Submit(spec))? {
        Response::Submitted { job } => job,
        Response::Error(e) => return Err(format!("submit was rejected: {e}")),
        other => return Err(format!("unexpected submit response: {other:?}")),
    };
    if job != 0 {
        return Err(format!("a fresh daemon assigned job {job}, expected 0"));
    }
    let saved_before_kill = wait_for_saves(&state_dir, kill_after_saves, Duration::from_secs(240))?;
    // SIGKILL mid-job: no drain, no cleanup — exactly what crash-safety is
    // supposed to survive.
    drop(daemon);
    if cfg.echo {
        println!(
            "chaos round {round}: daemon killed with shards {saved_before_kill:?} checkpointed; \
             resuming"
        );
    }

    let resumed = spawn_daemon(cfg, &state_dir, true)?;
    let status = wait_for_job(&resumed.addr(), 0, Duration::from_secs(600))?;
    if !status.recovered {
        return Err("the resumed daemon does not mark job 0 as recovered".into());
    }
    let (digests_match, counters_match) = compare(baseline, &status)?;
    // Ask the daemon to exit cleanly so its workdir is removed; the round's
    // evidence (journal, checkpoints, serve.log) lives in the state dir.
    let _ = call(&resumed.addr(), &Request::Shutdown);
    drop(resumed);

    let text = std::fs::read_to_string(Journal::path_in(&state_dir))
        .map_err(|e| format!("cannot read the round's journal: {e}"))?;
    let (saved_journaled, rerun_after_resume) = analyze_journal(&text)?;
    debug_assert!(saved_journaled.is_superset(&saved_before_kill));
    Ok(DrillOutcome {
        round,
        plan,
        kill_after_saves,
        saved_before_kill,
        rerun_after_resume,
        retries: status.retries,
        digests_match,
        counters_match,
        state_dir,
    })
}

/// Runs `cfg.rounds` kill-and-resume rounds and returns every outcome
/// (pass and fail alike — the caller renders and judges them).  The
/// uninterrupted baseline is swept once, in-process, up front.
pub fn run_drills(cfg: &ChaosConfig) -> Result<Vec<DrillOutcome>, String> {
    if cfg.rounds == 0 {
        return Err("chaos needs at least one round".into());
    }
    if cfg.shards == 0 {
        return Err("chaos needs at least one shard per job".into());
    }
    let baseline = baseline_report(cfg)?;
    if cfg.echo {
        println!(
            "chaos baseline: {} scenarios over seeds {}..{}",
            baseline.scenarios(),
            cfg.seeds.0,
            cfg.seeds.1
        );
    }
    let mut outcomes = Vec::with_capacity(cfg.rounds as usize);
    for round in 0..cfg.rounds {
        outcomes.push(run_round(cfg, &baseline, round)?);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ChaosConfig {
        ChaosConfig {
            binary: PathBuf::from("semint"),
            seed: 7,
            rounds: 4,
            seeds: (0, 30),
            profile: "default".into(),
            case: "all".into(),
            shards: 4,
            jobs: 2,
            workers: 2,
            batch: 4,
            worker_timeout_ms: 4000,
            state_root: PathBuf::from("chaos-state"),
            echo: false,
        }
    }

    #[test]
    fn schedules_are_deterministic_in_bounds_and_seed_sensitive() {
        let cfg = config();
        for round in 0..cfg.rounds {
            let (plan, kill) = schedule(&cfg, round);
            assert_eq!((plan, kill), schedule(&cfg, round), "pure function");
            assert!(plan.shard < cfg.shards);
            assert!((1..=5).contains(&plan.after));
            assert!(kill < cfg.shards);
        }
        let reseeded = ChaosConfig {
            seed: 8,
            ..config()
        };
        assert!(
            (0..cfg.rounds).any(|r| schedule(&cfg, r) != schedule(&reseeded, r)),
            "different seeds must produce different schedules"
        );
        // Across enough rounds the schedule exercises every fault kind.
        let many = ChaosConfig {
            rounds: 64,
            ..config()
        };
        let kinds: BTreeSet<&str> = (0..many.rounds)
            .map(|r| schedule(&many, r).0.kind.label())
            .collect();
        assert_eq!(kinds.len(), FaultKind::ALL.len(), "{kinds:?}");
    }

    #[test]
    fn the_listen_banner_parses_and_garbage_does_not() {
        let line = "semint serve: listening on 127.0.0.1:7844 · 4 workers · \
                    queue capacity 16 · worker timeout 30000 ms · 2 retries per shard\n";
        assert_eq!(parse_listen_port(line), Some(7844));
        assert_eq!(parse_listen_port("no address here\n"), None);
        assert_eq!(parse_listen_port("127.0.0.1:notaport\n"), None);
    }

    #[test]
    fn journal_analysis_partitions_at_the_last_resume() {
        let spec = JobSpec {
            seeds: (0, 30),
            profile: "default".into(),
            case: "all".into(),
            shards: 3,
            jobs: 1,
            batch: 1,
            model_check: false,
            fault: None,
        };
        let lines = [
            JournalEvent::Submitted { job: 0, spec },
            JournalEvent::ShardStarted {
                job: 0,
                shard: 0,
                attempt: 0,
            },
            JournalEvent::ShardSaved {
                job: 0,
                shard: 0,
                attempt: 0,
                path: "job0-shard0.tsv".into(),
                digest: "fnv1a:0".into(),
            },
            JournalEvent::Resumed { jobs: 1 },
            JournalEvent::ShardStarted {
                job: 0,
                shard: 1,
                attempt: 0,
            },
            JournalEvent::ShardStarted {
                job: 0,
                shard: 0,
                attempt: 1,
            },
            JournalEvent::JobCompleted { job: 0 },
        ];
        let text: String = lines
            .iter()
            .map(|e| format!("{}\n", journal::render_event(e)))
            .collect();
        let (saved, rerun) = analyze_journal(&text).expect("analyzes");
        assert_eq!(saved, BTreeSet::from([0]));
        // Shard 0 was checkpointed before the kill yet started again after
        // the resume: the invariant the drill exists to catch.
        assert_eq!(rerun, BTreeSet::from([0]));
        let clean = text.replace(
            &journal::render_event(&JournalEvent::ShardStarted {
                job: 0,
                shard: 0,
                attempt: 1,
            }),
            "",
        );
        let (_, rerun) = analyze_journal(&clean).expect("analyzes");
        assert!(rerun.is_empty());
        assert!(analyze_journal("").unwrap_err().contains("daemon-resumed"));
    }

    #[test]
    fn zero_rounds_and_zero_shards_are_rejected_before_any_spawn() {
        let err = run_drills(&ChaosConfig {
            rounds: 0,
            ..config()
        })
        .unwrap_err();
        assert!(err.contains("round"), "{err}");
        let err = run_drills(&ChaosConfig {
            shards: 0,
            ..config()
        })
        .unwrap_err();
        assert!(err.contains("shard"), "{err}");
    }

    #[test]
    fn the_invariant_requires_all_three_checks() {
        let outcome = DrillOutcome {
            round: 0,
            plan: FaultPlan {
                shard: 0,
                after: 1,
                kind: FaultKind::Crash,
            },
            kill_after_saves: 1,
            saved_before_kill: BTreeSet::from([2]),
            rerun_after_resume: BTreeSet::new(),
            retries: 1,
            digests_match: true,
            counters_match: true,
            state_dir: PathBuf::from("chaos-state/round0"),
        };
        assert!(outcome.invariant_holds());
        assert!(!DrillOutcome {
            digests_match: false,
            ..outcome.clone()
        }
        .invariant_holds());
        assert!(!DrillOutcome {
            counters_match: false,
            ..outcome.clone()
        }
        .invariant_holds());
        assert!(!DrillOutcome {
            rerun_after_resume: BTreeSet::from([2]),
            ..outcome
        }
        .invariant_holds());
    }
}
