//! The daemon's write-ahead log: an append-only, fsync'd JSONL journal of
//! job lifecycle transitions, plus the replay logic `--resume` uses to
//! rebuild the queue after a crash.
//!
//! Durability contract, in order:
//!
//! 1. A shard's validated TSV report is written to the state dir and
//!    `sync_all`'d **before** its `shard-saved` event is journaled, so a
//!    journaled checkpoint always exists on disk (the digest in the event
//!    lets resume detect a corrupted one).
//! 2. Every journal append is a single `write_all` of one line followed by
//!    `sync_data`, so after a crash the journal is a prefix of the true
//!    history plus at most one torn final line.
//! 3. A torn final line is a transition that never became durable — replay
//!    drops it (it never happened), and [`Journal::open`] neutralizes it
//!    with a lone newline so later appends start on a fresh line.
//!
//! Replay is deliberately tolerant of *duplicates* (a shard re-run after a
//! corrupted checkpoint journals `shard-saved` again; last wins) and of
//! unparseable lines anywhere in the file (neutralized torn lines persist
//! mid-file across daemon lives), but strict about *structure*: events that
//! reference a job or shard the journal never introduced are hard errors —
//! that journal belongs to some other state dir.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::protocol::{parse_spec, render_spec};
use super::queue::JobSpec;
use crate::json::{document_version, escape_json, Reader, FORMAT_VERSION};

/// The journal's file name inside a `--state-dir`.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// The checkpoint file name for one job's shard inside a `--state-dir`.
pub fn checkpoint_name(job: u64, shard: u64) -> String {
    format!("job{job}-shard{shard}.tsv")
}

/// One durable job lifecycle transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// A job was admitted with this (validated, shards-resolved) spec.
    Submitted {
        /// Daemon-assigned job id (dense, starting at 0).
        job: u64,
        /// The validated spec, exactly as the queue holds it.
        spec: JobSpec,
    },
    /// A shard worker process was spawned.
    ShardStarted {
        /// The job the shard belongs to.
        job: u64,
        /// Shard index (0-based).
        shard: u64,
        /// 0 = first issue, >0 = re-issue after a death.
        attempt: u64,
    },
    /// A shard's report was validated and checkpointed to the state dir.
    ShardSaved {
        /// The job the shard belongs to.
        job: u64,
        /// Shard index (0-based).
        shard: u64,
        /// The attempt that produced the checkpoint.
        attempt: u64,
        /// Checkpoint file name, relative to the state dir.
        path: String,
        /// [`content_digest`] of the checkpoint bytes, for resume-time
        /// corruption detection.
        digest: String,
    },
    /// A shard attempt died (crash / wedge / bad report) and was re-issued.
    ShardDied {
        /// The job the shard belongs to.
        job: u64,
        /// Shard index (0-based).
        shard: u64,
        /// The attempt that died.
        attempt: u64,
        /// The supervisor's classification of the death.
        reason: String,
    },
    /// Every shard merged; the job's digests are final.
    JobCompleted {
        /// The finished job.
        job: u64,
    },
    /// The job was abandoned with this reason.
    JobFailed {
        /// The abandoned job.
        job: u64,
        /// Why it was abandoned.
        reason: String,
    },
    /// A daemon replayed this journal and took over its jobs.  Everything
    /// before the *last* such marker predates the current daemon's life.
    Resumed {
        /// How many jobs the daemon recovered.
        jobs: u64,
    },
}

fn header() -> String {
    format!("{{\"semint_journal\": 1, \"version\": {FORMAT_VERSION}")
}

/// Renders one event as its one-line journal form (no trailing newline).
pub fn render_event(event: &JournalEvent) -> String {
    let mut out = header();
    match event {
        JournalEvent::Submitted { job, spec } => {
            out.push_str(&format!(
                ", \"event\": \"job-submitted\", \"job\": {job}, \"spec\": {}",
                render_spec(spec)
            ));
        }
        JournalEvent::ShardStarted {
            job,
            shard,
            attempt,
        } => {
            out.push_str(&format!(
                ", \"event\": \"shard-started\", \"job\": {job}, \"shard\": {shard}, \
                 \"attempt\": {attempt}"
            ));
        }
        JournalEvent::ShardSaved {
            job,
            shard,
            attempt,
            path,
            digest,
        } => {
            out.push_str(&format!(
                ", \"event\": \"shard-saved\", \"job\": {job}, \"shard\": {shard}, \
                 \"attempt\": {attempt}, \"path\": \"{}\", \"digest\": \"{}\"",
                escape_json(path),
                escape_json(digest)
            ));
        }
        JournalEvent::ShardDied {
            job,
            shard,
            attempt,
            reason,
        } => {
            out.push_str(&format!(
                ", \"event\": \"shard-died\", \"job\": {job}, \"shard\": {shard}, \
                 \"attempt\": {attempt}, \"reason\": \"{}\"",
                escape_json(reason)
            ));
        }
        JournalEvent::JobCompleted { job } => {
            out.push_str(&format!(", \"event\": \"job-completed\", \"job\": {job}"));
        }
        JournalEvent::JobFailed { job, reason } => {
            out.push_str(&format!(
                ", \"event\": \"job-failed\", \"job\": {job}, \"reason\": \"{}\"",
                escape_json(reason)
            ));
        }
        JournalEvent::Resumed { jobs } => {
            out.push_str(&format!(
                ", \"event\": \"daemon-resumed\", \"jobs\": {jobs}"
            ));
        }
    }
    out.push('}');
    out
}

/// Parses one journal line, checking the journal marker and the shared
/// version field.
pub fn parse_event(line: &str) -> Result<JournalEvent, String> {
    let mut reader = Reader::new(line);
    let doc = reader
        .value()
        .map_err(|e| format!("{} ({e})", reader.position()))?;
    if reader.peek_after_ws().is_some() {
        return Err("trailing content after journal entry".into());
    }
    doc.require("semint_journal")?
        .as_u64("semint_journal")
        .and_then(|v| match v {
            1 => Ok(()),
            other => Err(format!("unsupported semint_journal format {other}")),
        })?;
    document_version(&doc)?;
    let job = || doc.require("job")?.as_u64("job");
    let shard = || doc.require("shard")?.as_u64("shard");
    let attempt = || doc.require("attempt")?.as_u64("attempt");
    let text =
        |key: &str| -> Result<String, String> { Ok(doc.require(key)?.as_str(key)?.to_string()) };
    match doc.require("event")?.as_str("event")? {
        "job-submitted" => Ok(JournalEvent::Submitted {
            job: job()?,
            spec: parse_spec(doc.require("spec")?)?,
        }),
        "shard-started" => Ok(JournalEvent::ShardStarted {
            job: job()?,
            shard: shard()?,
            attempt: attempt()?,
        }),
        "shard-saved" => Ok(JournalEvent::ShardSaved {
            job: job()?,
            shard: shard()?,
            attempt: attempt()?,
            path: text("path")?,
            digest: text("digest")?,
        }),
        "shard-died" => Ok(JournalEvent::ShardDied {
            job: job()?,
            shard: shard()?,
            attempt: attempt()?,
            reason: text("reason")?,
        }),
        "job-completed" => Ok(JournalEvent::JobCompleted { job: job()? }),
        "job-failed" => Ok(JournalEvent::JobFailed {
            job: job()?,
            reason: text("reason")?,
        }),
        "daemon-resumed" => Ok(JournalEvent::Resumed {
            jobs: doc.require("jobs")?.as_u64("jobs")?,
        }),
        other => Err(format!("unknown journal event {other:?}")),
    }
}

/// An open journal file handle, shared between the accept loop (submits)
/// and the scheduler (everything else).
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Where the journal lives inside a state dir.
    pub fn path_in(state_dir: &Path) -> PathBuf {
        state_dir.join(JOURNAL_FILE)
    }

    /// Opens (creating if absent) the journal in `state_dir` for appending.
    /// If the existing file does not end in a newline — a torn final line
    /// from a previous crash — a lone newline is appended and synced first,
    /// so later entries never glue onto the torn one.
    pub fn open(state_dir: &Path) -> Result<Journal, String> {
        let path = Journal::path_in(state_dir);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut existing = Vec::new();
        file.read_to_end(&mut existing)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        if !existing.is_empty() && existing.last() != Some(&b'\n') {
            file.write_all(b"\n")
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("cannot neutralize the torn journal tail: {e}"))?;
        }
        Ok(Journal {
            file: Mutex::new(file),
            path,
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event and fsyncs it: when this returns `Ok`, the
    /// transition is durable.
    pub fn append(&self, event: &JournalEvent) -> Result<(), String> {
        let line = format!("{}\n", render_event(event));
        let mut file = self.file.lock().expect("journal file poisoned");
        file.write_all(line.as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("cannot append to journal {}: {e}", self.path.display()))
    }
}

/// How a recovered job had settled by the end of the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveredOutcome {
    /// Still queued or mid-flight when the daemon died: re-enqueue it.
    Incomplete,
    /// The journal recorded `job-completed`.
    Completed,
    /// The journal recorded `job-failed` with this reason.
    Failed(String),
}

/// One job as reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJob {
    /// The journaled job id (dense; replay enforces submission order).
    pub id: u64,
    /// The validated spec the daemon admitted.
    pub spec: JobSpec,
    /// How the job had settled, if at all.
    pub outcome: RecoveredOutcome,
    /// Checkpointed shards: index → (checkpoint file name, content digest).
    /// Last write wins — a shard re-run after checkpoint corruption
    /// re-journals its save.
    pub saved: BTreeMap<u64, (String, String)>,
    /// Shard re-issues the journal recorded.
    pub retries: u64,
}

/// Everything replay recovered from one journal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveredState {
    /// Jobs in submission order (index = id).
    pub jobs: Vec<RecoveredJob>,
    /// Unparseable lines skipped (torn tails, including neutralized ones
    /// from earlier daemon lives).
    pub torn_lines: u64,
    /// How many `daemon-resumed` markers the journal holds.
    pub resumes: u64,
}

impl RecoveredState {
    fn apply(&mut self, event: JournalEvent) -> Result<(), String> {
        match event {
            JournalEvent::Submitted { job, spec } => {
                if job != self.jobs.len() as u64 {
                    return Err(format!(
                        "journal submitted job {job} out of order (expected {})",
                        self.jobs.len()
                    ));
                }
                self.jobs.push(RecoveredJob {
                    id: job,
                    spec,
                    outcome: RecoveredOutcome::Incomplete,
                    saved: BTreeMap::new(),
                    retries: 0,
                });
            }
            JournalEvent::ShardStarted { job, shard, .. } => {
                self.shard_of(job, shard)?;
            }
            JournalEvent::ShardSaved {
                job,
                shard,
                path,
                digest,
                ..
            } => {
                let recovered = self.shard_of(job, shard)?;
                recovered.saved.insert(shard, (path, digest));
            }
            JournalEvent::ShardDied { job, shard, .. } => {
                self.shard_of(job, shard)?.retries += 1;
            }
            JournalEvent::JobCompleted { job } => {
                self.job_of(job)?.outcome = RecoveredOutcome::Completed;
            }
            JournalEvent::JobFailed { job, reason } => {
                self.job_of(job)?.outcome = RecoveredOutcome::Failed(reason);
            }
            JournalEvent::Resumed { .. } => self.resumes += 1,
        }
        Ok(())
    }

    fn job_of(&mut self, job: u64) -> Result<&mut RecoveredJob, String> {
        let known = self.jobs.len();
        self.jobs
            .get_mut(job as usize)
            .ok_or_else(|| format!("journal references job {job} but only {known} were submitted"))
    }

    fn shard_of(&mut self, job: u64, shard: u64) -> Result<&mut RecoveredJob, String> {
        let recovered = self.job_of(job)?;
        if shard >= recovered.spec.shards {
            return Err(format!(
                "journal references shard {shard} of job {job}, which has only {} shards",
                recovered.spec.shards
            ));
        }
        Ok(recovered)
    }
}

/// Replays a journal's text into the state a resuming daemon adopts.
///
/// Unparseable lines are tolerated anywhere (counted in `torn_lines`) —
/// only the final line can be torn by a crash, but a neutralized torn line
/// persists mid-file once the daemon has lived and died again.  Structural
/// inconsistencies (events referencing jobs or shards never submitted) are
/// hard errors: the journal does not describe this state dir.
pub fn replay(text: &str) -> Result<RecoveredState, String> {
    let mut state = RecoveredState::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_event(line) {
            Ok(event) => state.apply(event)?,
            Err(_torn) => state.torn_lines += 1,
        }
    }
    Ok(state)
}

/// FNV-1a 64 over raw bytes, rendered `fnv1a:{hash:016x}` — the checkpoint
/// content digest journaled with every `shard-saved` event.  (Case digests
/// from [`semint_core::stats::CaseReport::digest`] summarize *aggregates*;
/// this one fingerprints the exact bytes on disk, so resume can tell a
/// corrupted checkpoint from a valid one.)
pub fn content_digest(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a:{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            seeds: (0, 60),
            profile: "deep".into(),
            case: "all".into(),
            shards: 3,
            jobs: 2,
            batch: 4,
            model_check: false,
            fault: None,
        }
    }

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Submitted {
                job: 0,
                spec: sample_spec(),
            },
            JournalEvent::ShardStarted {
                job: 0,
                shard: 0,
                attempt: 0,
            },
            JournalEvent::ShardDied {
                job: 0,
                shard: 0,
                attempt: 0,
                reason: "crashed (exit code 42)".into(),
            },
            JournalEvent::ShardSaved {
                job: 0,
                shard: 0,
                attempt: 1,
                path: checkpoint_name(0, 0),
                digest: content_digest(b"case\tsharedmem\n"),
            },
            JournalEvent::JobCompleted { job: 0 },
            JournalEvent::Resumed { jobs: 1 },
            JournalEvent::JobFailed {
                job: 0,
                reason: "retry budget (2) exhausted".into(),
            },
        ]
    }

    #[test]
    fn every_event_round_trips_on_one_line() {
        for event in sample_events() {
            let line = render_event(&event);
            assert!(!line.contains('\n'), "one line per event: {line}");
            assert_eq!(parse_event(&line).expect("round trip"), event);
        }
    }

    #[test]
    fn version_skew_matches_the_shared_document_policy() {
        let line = render_event(&JournalEvent::JobCompleted { job: 3 });
        let future = line.replace(&format!("\"version\": {FORMAT_VERSION}"), "\"version\": 99");
        assert!(parse_event(&future).unwrap_err().contains("newer"));
        let legacy = line.replace(&format!(", \"version\": {FORMAT_VERSION}"), "");
        assert_ne!(line, legacy);
        assert_eq!(
            parse_event(&legacy).unwrap(),
            JournalEvent::JobCompleted { job: 3 }
        );
        assert!(parse_event("{}").unwrap_err().contains("semint_journal"));
    }

    #[test]
    fn replay_reconstructs_saved_shards_outcomes_and_retries() {
        let text: String = sample_events()
            .iter()
            .map(|e| format!("{}\n", render_event(e)))
            .collect();
        let state = replay(&text).expect("valid journal");
        assert_eq!(state.jobs.len(), 1);
        assert_eq!(state.torn_lines, 0);
        assert_eq!(state.resumes, 1);
        let job = &state.jobs[0];
        assert_eq!(job.spec, sample_spec());
        assert_eq!(job.retries, 1);
        assert_eq!(job.saved.len(), 1);
        assert_eq!(job.saved[&0].0, checkpoint_name(0, 0));
        // Last outcome wins: the post-resume failure overrode the earlier
        // completion.
        assert_eq!(
            job.outcome,
            RecoveredOutcome::Failed("retry budget (2) exhausted".into())
        );
    }

    #[test]
    fn torn_lines_are_counted_and_dropped_wherever_they_sit() {
        let good = render_event(&JournalEvent::Submitted {
            job: 0,
            spec: sample_spec(),
        });
        let saved = render_event(&JournalEvent::ShardSaved {
            job: 0,
            shard: 1,
            attempt: 0,
            path: checkpoint_name(0, 1),
            digest: content_digest(b"x"),
        });
        // A neutralized torn line mid-file and a torn tail: both dropped.
        let half = &saved[..saved.len() / 2];
        let text = format!("{good}\n{half}\n{saved}\n{half}");
        let state = replay(&text).expect("torn lines are tolerated");
        assert_eq!(state.torn_lines, 2);
        assert_eq!(state.jobs[0].saved.len(), 1);
    }

    #[test]
    fn structurally_impossible_events_are_hard_errors() {
        let orphan = render_event(&JournalEvent::JobCompleted { job: 0 });
        assert!(replay(&orphan).unwrap_err().contains("job 0"));
        let wrong_id = render_event(&JournalEvent::Submitted {
            job: 5,
            spec: sample_spec(),
        });
        assert!(replay(&wrong_id).unwrap_err().contains("out of order"));
        let submitted = render_event(&JournalEvent::Submitted {
            job: 0,
            spec: sample_spec(),
        });
        let wild_shard = render_event(&JournalEvent::ShardStarted {
            job: 0,
            shard: 9,
            attempt: 0,
        });
        let err = replay(&format!("{submitted}\n{wild_shard}\n")).unwrap_err();
        assert!(err.contains("shard 9"), "{err}");
    }

    #[test]
    fn open_neutralizes_a_torn_tail_and_appends_survive_it() {
        let dir = std::env::temp_dir().join(format!("semint-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let submitted = render_event(&JournalEvent::Submitted {
            job: 0,
            spec: sample_spec(),
        });
        let torn = &submitted[..submitted.len() - 7];
        std::fs::write(Journal::path_in(&dir), format!("{submitted}\n{torn}")).unwrap();
        let journal = Journal::open(&dir).expect("opens over a torn tail");
        journal
            .append(&JournalEvent::JobCompleted { job: 0 })
            .expect("append after neutralization");
        let text = std::fs::read_to_string(journal.path()).unwrap();
        let state = replay(&text).expect("replays");
        assert_eq!(state.torn_lines, 1, "{text}");
        assert_eq!(state.jobs[0].outcome, RecoveredOutcome::Completed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_digest_is_stable_and_content_sensitive() {
        let a = content_digest(b"case\tsharedmem\nscenarios\t30\n");
        assert!(a.starts_with("fnv1a:"), "{a}");
        assert_eq!(a, content_digest(b"case\tsharedmem\nscenarios\t30\n"));
        assert_ne!(a, content_digest(b"case\tsharedmem\nscenarios\t31\n"));
        assert_eq!(content_digest(b""), "fnv1a:cbf29ce484222325");
    }
}
