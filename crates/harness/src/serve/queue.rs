//! The daemon's bounded FIFO job queue.
//!
//! `semint serve` runs **one job at a time** — parallelism lives *inside* a
//! job, as the fleet of shard workers the supervisor drives — so the queue
//! is a plain FIFO with bounded admission: a [`JobQueue`] holds at most
//! `capacity` unfinished jobs, and `submit` is rejected (backpressure, not
//! blocking) once the daemon is that far behind.  Every accepted job carries
//! its own [`RollingMerge`], so `semint status` can show digests-so-far
//! while shards are still landing.

use std::collections::VecDeque;

use semint_core::case::GenProfile;

use super::merge::RollingMerge;
use super::protocol::JobStatus;
use crate::cases::AnyCase;
use crate::engine::MAX_SEEDS_PER_SWEEP;
use crate::source::{SeedRange, Shard};

/// How an injected fault sabotages its shard's first attempt.  Each kind
/// exercises one branch of the supervisor's death classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker aborts mid-sweep with a nonzero exit (`--die-after`).
    Crash,
    /// The worker goes silent without exiting (`--wedge-after`); only the
    /// heartbeat timeout can catch it.
    Wedge,
    /// The worker exits cleanly but its saved report is garbage
    /// (`--corrupt-save garbage`).
    CorruptReport,
    /// The worker exits cleanly but its saved report is cut mid-line
    /// (`--corrupt-save truncate`).
    TruncateReport,
}

impl FaultKind {
    /// Every kind, in the order the chaos schedule cycles through them.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Crash,
        FaultKind::Wedge,
        FaultKind::CorruptReport,
        FaultKind::TruncateReport,
    ];

    /// The wire/CLI label for this kind.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Wedge => "wedge",
            FaultKind::CorruptReport => "corrupt-report",
            FaultKind::TruncateReport => "truncate-report",
        }
    }

    /// Parses a wire/CLI label back into a kind.
    pub fn from_label(label: &str) -> Result<FaultKind, String> {
        FaultKind::ALL
            .into_iter()
            .find(|kind| kind.label() == label)
            .ok_or_else(|| {
                let known: Vec<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
                format!(
                    "unknown fault kind {label:?} (expected one of: {})",
                    known.join(" | ")
                )
            })
    }
}

/// An injected fault for crash-recovery testing: shard `shard`'s *first*
/// attempt is sabotaged per `kind` once `after` scenarios have finished,
/// so the supervisor must classify the death and re-issue the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which shard index is sabotaged (0-based).
    pub shard: u64,
    /// After how many completed scenarios the fault fires.
    pub after: u64,
    /// How the shard misbehaves.
    pub kind: FaultKind,
}

/// One sweep request as submitted over the wire: a seed range, a *preset*
/// profile name (customised knobs don't serialise; the wire protocol pins
/// presets so worker processes rebuild the identical profile by name), and
/// the fan-out/execution shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Seed range `[start, end)`.
    pub seeds: (u64, u64),
    /// Preset profile name (`smoke` / `default` / `deep` / `boundary-heavy`).
    pub profile: String,
    /// Case study name, or `all`.
    pub case: String,
    /// How many shard workers to split the range across; 0 means "one per
    /// daemon worker slot", resolved at submit time.
    pub shards: u64,
    /// `--jobs` threads inside each worker.
    pub jobs: usize,
    /// `--batch` size inside each worker.
    pub batch: usize,
    /// Whether workers run the realizability-model stage.
    pub model_check: bool,
    /// Optional injected fault, for supervision tests and the chaos drill.
    pub fault: Option<FaultPlan>,
}

impl JobSpec {
    /// Validates the spec against everything a worker would reject, so bad
    /// submissions fail at the daemon's front door instead of as a dead
    /// child process.  `workers` resolves `shards == 0`; on success the
    /// returned spec carries the resolved shard count.
    pub fn validated(mut self, workers: usize) -> Result<JobSpec, String> {
        let range = SeedRange::new(self.seeds.0, self.seeds.1)?;
        if range.count() > MAX_SEEDS_PER_SWEEP {
            return Err(format!(
                "seed range {} holds {} seeds, exceeding the per-sweep cap of {MAX_SEEDS_PER_SWEEP}",
                range.spec(),
                range.count()
            ));
        }
        if GenProfile::by_name(&self.profile).is_none() {
            return Err(format!(
                "profile {:?} is not a preset (expected one of: {}); \
                 serve jobs pin preset profiles so workers rebuild them by name",
                self.profile,
                GenProfile::PRESET_NAMES.join(" | ")
            ));
        }
        if self.case != "all" && AnyCase::by_name(&self.case, false).is_none() {
            return Err(format!("unknown case {:?}", self.case));
        }
        if self.jobs == 0 {
            return Err("jobs must be at least 1".into());
        }
        if self.batch == 0 {
            return Err("batch must be at least 1".into());
        }
        if self.shards == 0 {
            self.shards = workers.max(1) as u64;
        }
        // Shard::new is the single source of truth for shard validity.
        Shard::new(range, 0, self.shards)?;
        if let Some(fault) = self.fault {
            if fault.shard >= self.shards {
                return Err(format!(
                    "fault shard {} is out of range (job has {} shards)",
                    fault.shard, self.shards
                ));
            }
            if fault.after == 0 {
                return Err("fault after must be at least 1 scenario".into());
            }
        }
        Ok(self)
    }

    /// The seed range this job sweeps.
    pub fn range(&self) -> SeedRange {
        SeedRange::new(self.seeds.0, self.seeds.1).expect("validated at submit")
    }
}

/// Where a job is in its life cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for its turn.
    Queued,
    /// The supervisor is driving its shard fleet right now.
    Running,
    /// Every shard merged; digests are final.
    Done,
    /// Gave up (a shard exhausted its retries, or results were incomplete).
    Failed(String),
}

impl JobState {
    /// The wire label for this state.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One accepted job: its spec, life-cycle state, rolling merge, and how
/// many shard re-issues its fleet has needed so far.
#[derive(Debug)]
pub struct Job {
    /// Daemon-assigned id (dense, starting at 0).
    pub id: u64,
    /// The validated spec (shards resolved).
    pub spec: JobSpec,
    /// Current life-cycle state.
    pub state: JobState,
    /// Digests-so-far.
    pub merge: RollingMerge,
    /// Total shard attempts beyond the first, across the whole job.
    pub retries: u64,
    /// Whether this job was rebuilt from the journal by `--resume` rather
    /// than submitted to this daemon process.
    pub recovered: bool,
}

impl Job {
    /// The job's externally visible snapshot, as `semint status` shows it.
    pub fn status(&self) -> JobStatus {
        JobStatus {
            id: self.id,
            state: self.state.label().to_string(),
            error: match &self.state {
                JobState::Failed(e) => Some(e.clone()),
                _ => None,
            },
            shards_done: self.merge.shards_done(),
            shards_total: self.merge.shards_total(),
            retries: self.retries,
            scenarios: self.merge.report().scenarios(),
            failures: self.merge.report().failure_count() as u64,
            digests: self.merge.digests(),
            report_tsv: self.merge.report().to_tsv(),
            recovered: self.recovered,
        }
    }
}

/// The daemon's job table: a bounded FIFO of unfinished jobs plus the
/// finished ones (kept so `status` can report completed digests until
/// shutdown).
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    workers: usize,
    jobs: Vec<Job>,
    pending: VecDeque<u64>,
    active: Option<u64>,
    draining: bool,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` unfinished jobs, with
    /// `workers` worker slots (resolves `shards: 0` at submit).
    pub fn new(capacity: usize, workers: usize) -> JobQueue {
        JobQueue {
            capacity: capacity.max(1),
            workers: workers.max(1),
            jobs: Vec::new(),
            pending: VecDeque::new(),
            active: None,
            draining: false,
        }
    }

    /// How many jobs are accepted but not yet finished.
    fn unfinished(&self) -> usize {
        self.pending.len() + usize::from(self.active.is_some())
    }

    /// Admits a job, or rejects it: invalid specs and a full queue both
    /// bounce at the front door (backpressure is an error the client sees,
    /// never an unbounded buffer).
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, String> {
        if self.draining {
            return Err("daemon is draining; new jobs are not accepted".into());
        }
        if self.unfinished() >= self.capacity {
            return Err(format!(
                "queue is full ({} of {} jobs unfinished); retry after a job completes",
                self.unfinished(),
                self.capacity
            ));
        }
        let spec = spec.validated(self.workers)?;
        let id = self.jobs.len() as u64;
        let merge = RollingMerge::new(spec.shards);
        self.jobs.push(Job {
            id,
            spec,
            state: JobState::Queued,
            merge,
            retries: 0,
            recovered: false,
        });
        self.pending.push_back(id);
        Ok(id)
    }

    /// Re-admits a journal-recovered job during `--resume`, preserving its
    /// pre-crash merge progress and retry count.  Restores bypass the
    /// capacity check — they were admitted once already — but must arrive
    /// in id order, before the daemon starts scheduling: a restore can
    /// never displace live work.
    pub fn restore(
        &mut self,
        spec: JobSpec,
        state: JobState,
        merge: RollingMerge,
        retries: u64,
    ) -> Result<u64, String> {
        if self.active.is_some() {
            return Err("cannot restore jobs while one is running".into());
        }
        if state == JobState::Running {
            return Err("a recovered job is never mid-run; restore it as queued".into());
        }
        let id = self.jobs.len() as u64;
        let queued = state == JobState::Queued;
        self.jobs.push(Job {
            id,
            spec,
            state,
            merge,
            retries,
            recovered: true,
        });
        if queued {
            self.pending.push_back(id);
        }
        Ok(id)
    }

    /// Fails a not-yet-finished job outright (used when its `job-submitted`
    /// journal entry could not be made durable: an unjournaled job would
    /// silently vanish on resume, so it must not run).
    pub fn fail_job(&mut self, id: u64, reason: String) {
        self.pending.retain(|&pending| pending != id);
        if self.active == Some(id) {
            self.active = None;
        }
        if let Some(job) = self.jobs.get_mut(id as usize) {
            job.state = JobState::Failed(reason);
        }
    }

    /// Claims the next job for the supervisor (FIFO, one at a time).
    pub fn take_next(&mut self) -> Option<u64> {
        if self.active.is_some() {
            return None;
        }
        let id = self.pending.pop_front()?;
        self.jobs[id as usize].state = JobState::Running;
        self.active = Some(id);
        Some(id)
    }

    /// Marks the active job finished.
    pub fn finish_active(&mut self, result: Result<(), String>) {
        if let Some(id) = self.active.take() {
            self.jobs[id as usize].state = match result {
                Ok(()) => JobState::Done,
                Err(e) => JobState::Failed(e),
            };
        }
    }

    /// Stops admitting jobs; already-accepted ones still run to completion.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether the daemon has begun draining.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// True when draining and every accepted job has finished — the daemon
    /// can exit.
    pub fn is_drained(&self) -> bool {
        self.draining && self.unfinished() == 0
    }

    /// Immutable access to one job.
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.get(id as usize)
    }

    /// Mutable access to one job (the supervisor merges shard reports and
    /// bumps retry counts through this).
    pub fn job_mut(&mut self, id: u64) -> Option<&mut Job> {
        self.jobs.get_mut(id as usize)
    }

    /// Snapshots of every job, oldest first.
    pub fn snapshot(&self) -> Vec<JobStatus> {
        self.jobs.iter().map(Job::status).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            seeds: (0, 40),
            profile: "default".into(),
            case: "all".into(),
            shards: 0,
            jobs: 1,
            batch: 1,
            model_check: false,
            fault: None,
        }
    }

    #[test]
    fn fifo_order_one_active_job_and_bounded_admission() {
        let mut queue = JobQueue::new(2, 3);
        let a = queue.submit(spec()).expect("first job fits");
        let b = queue.submit(spec()).expect("second job fits");
        let err = queue.submit(spec()).expect_err("third job bounces");
        assert!(err.contains("full"), "{err}");
        assert_eq!(queue.take_next(), Some(a));
        assert_eq!(queue.take_next(), None, "one job at a time");
        // shards: 0 resolved to the worker count at submit.
        assert_eq!(queue.job(a).unwrap().spec.shards, 3);
        queue.finish_active(Ok(()));
        assert_eq!(queue.job(a).unwrap().state, JobState::Done);
        assert_eq!(queue.take_next(), Some(b));
        queue.finish_active(Err("boom".into()));
        assert_eq!(queue.job(b).unwrap().state.label(), "failed");
        // Finished jobs free capacity.
        queue.submit(spec()).expect("capacity is back");
    }

    #[test]
    fn drain_refuses_new_jobs_but_finishes_accepted_ones() {
        let mut queue = JobQueue::new(4, 2);
        queue.submit(spec()).unwrap();
        queue.drain();
        assert!(queue.draining());
        assert!(!queue.is_drained(), "the accepted job still has to run");
        let err = queue.submit(spec()).expect_err("draining refuses jobs");
        assert!(err.contains("draining"), "{err}");
        let id = queue.take_next().expect("accepted job still runs");
        queue.finish_active(Ok(()));
        assert!(queue.is_drained());
        assert_eq!(queue.job(id).unwrap().state, JobState::Done);
    }

    #[test]
    fn invalid_specs_bounce_at_submit() {
        let mut queue = JobQueue::new(4, 2);
        let cases: Vec<(JobSpec, &str)> = vec![
            (
                JobSpec {
                    seeds: (9, 3),
                    ..spec()
                },
                "seed",
            ),
            (
                JobSpec {
                    profile: "custom".into(),
                    ..spec()
                },
                "preset",
            ),
            (
                JobSpec {
                    case: "nope".into(),
                    ..spec()
                },
                "case",
            ),
            (JobSpec { jobs: 0, ..spec() }, "jobs"),
            (JobSpec { batch: 0, ..spec() }, "batch"),
            (
                JobSpec {
                    shards: 2,
                    fault: Some(FaultPlan {
                        shard: 2,
                        after: 1,
                        kind: FaultKind::Crash,
                    }),
                    ..spec()
                },
                "fault shard",
            ),
            (
                JobSpec {
                    fault: Some(FaultPlan {
                        shard: 0,
                        after: 0,
                        kind: FaultKind::Wedge,
                    }),
                    ..spec()
                },
                "at least 1",
            ),
        ];
        for (bad, needle) in cases {
            let err = queue.submit(bad.clone()).expect_err("must bounce");
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
        assert_eq!(queue.snapshot().len(), 0, "nothing was admitted");
    }

    #[test]
    fn job_status_snapshots_carry_the_rolling_merge() {
        let mut queue = JobQueue::new(4, 2);
        let id = queue
            .submit(JobSpec {
                shards: 3,
                ..spec()
            })
            .unwrap();
        let status = &queue.snapshot()[id as usize];
        assert_eq!(status.state, "queued");
        assert_eq!(status.shards_total, 3);
        assert_eq!(status.shards_done, 0);
        assert_eq!(status.scenarios, 0);
        assert!(status.digests.is_empty());
        assert!(!status.recovered, "a live submit is not a recovery");
    }

    #[test]
    fn fault_kind_labels_round_trip_and_bad_labels_bounce() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(kind.label()), Ok(kind));
        }
        let err = FaultKind::from_label("segfault").expect_err("unknown kind");
        assert!(err.contains("crash | wedge"), "{err}");
    }

    #[test]
    fn restore_preserves_progress_and_marks_jobs_recovered() {
        let mut queue = JobQueue::new(1, 2);
        let validated = spec().validated(2).unwrap();
        // Capacity 1 is no obstacle: restores re-admit what was already
        // admitted before the crash.
        let a = queue
            .restore(validated.clone(), JobState::Queued, RollingMerge::new(2), 1)
            .expect("queued job restores");
        let b = queue
            .restore(validated.clone(), JobState::Done, RollingMerge::new(2), 0)
            .expect("settled job restores");
        assert_eq!((a, b), (0, 1));
        let snapshot = queue.snapshot();
        assert!(snapshot.iter().all(|s| s.recovered));
        assert_eq!(snapshot[0].retries, 1, "pre-crash retries survive");
        assert_eq!(snapshot[1].state, "done");
        // Only the queued restore is scheduled; the settled one is history.
        assert_eq!(queue.take_next(), Some(a));
        assert_eq!(queue.take_next(), None);
        let err = queue
            .restore(validated.clone(), JobState::Queued, RollingMerge::new(2), 0)
            .expect_err("restores must precede scheduling");
        assert!(err.contains("running"), "{err}");
        queue.finish_active(Ok(()));
        let err = queue
            .restore(validated, JobState::Running, RollingMerge::new(2), 0)
            .expect_err("running is not a restorable state");
        assert!(err.contains("queued"), "{err}");
    }

    #[test]
    fn fail_job_unschedules_and_records_the_reason() {
        let mut queue = JobQueue::new(4, 2);
        let id = queue.submit(spec()).unwrap();
        queue.fail_job(id, "journal append failed".into());
        assert_eq!(queue.take_next(), None, "failed jobs never run");
        let status = &queue.snapshot()[id as usize];
        assert_eq!(status.state, "failed");
        assert_eq!(status.error.as_deref(), Some("journal append failed"));
        // The failed job no longer counts against capacity.
        for _ in 0..4 {
            queue.submit(spec()).expect("capacity is free again");
        }
    }
}
