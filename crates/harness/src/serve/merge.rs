//! Live digest merge: folds per-shard sweep reports into one rolling
//! aggregate as workers finish, instead of waiting for the whole fleet.
//!
//! The heavy lifting was done in PR 3: every [`semint_core::stats::CaseReport`]
//! aggregate folds associatively and commutatively, so k-of-n shard reports
//! merge into the digests — and [`semint_core::VmCounters`] — of the
//! unsharded sweep, byte for byte, in *any* arrival order.  [`RollingMerge`]
//! adds the bookkeeping a long-running daemon needs on top: how many shards
//! have landed, whether the job is complete, and a snapshot of the
//! digests-so-far for `semint status`.

use std::collections::BTreeSet;

use semint_core::stats::SweepReport;

/// A job's rolling merged report: shard results are absorbed as they
/// arrive, and the digests converge on the one-shot sweep's the moment the
/// last shard lands.
///
/// The merge tracks *which* shard indices have landed, not just how many:
/// crash recovery replays checkpointed shards into a fresh merge, and a
/// double-merged shard would double-count its seeds silently — so
/// [`RollingMerge::absorb_shard`] rejects a repeated index outright.
#[derive(Debug, Clone)]
pub struct RollingMerge {
    shards_total: u64,
    done: BTreeSet<u64>,
    report: SweepReport,
}

impl RollingMerge {
    /// An empty merge expecting `shards_total` shard reports.
    pub fn new(shards_total: u64) -> RollingMerge {
        RollingMerge {
            shards_total,
            done: BTreeSet::new(),
            report: SweepReport::default(),
        }
    }

    /// Folds shard `index`'s completed report into the rolling aggregate.
    /// Arrival order never matters: merge is associative and commutative
    /// across shards of one partition.  Absorbing the same index twice is
    /// an error — the caller is confusing attempts with shards.
    pub fn absorb_shard(&mut self, index: u64, shard: &SweepReport) -> Result<(), String> {
        if index >= self.shards_total {
            return Err(format!(
                "shard index {index} is out of range (merge expects {} shards)",
                self.shards_total
            ));
        }
        if !self.done.insert(index) {
            return Err(format!("shard {index} was already merged"));
        }
        self.report.merge(shard);
        Ok(())
    }

    /// Shards merged so far.
    pub fn shards_done(&self) -> u64 {
        self.done.len() as u64
    }

    /// Whether shard `index` has already been merged.
    pub fn is_done(&self, index: u64) -> bool {
        self.done.contains(&index)
    }

    /// The merged shard indices, ascending.
    pub fn done_indices(&self) -> &BTreeSet<u64> {
        &self.done
    }

    /// Shards the job was split into.
    pub fn shards_total(&self) -> u64 {
        self.shards_total
    }

    /// True once every shard has been merged.
    pub fn is_complete(&self) -> bool {
        self.shards_done() == self.shards_total
    }

    /// The merged-so-far report.
    pub fn report(&self) -> &SweepReport {
        &self.report
    }

    /// The per-case digests of the merged-so-far report.
    pub fn digests(&self) -> Vec<String> {
        self.report.cases.iter().map(|c| c.digest()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::AnyCase;
    use crate::engine::{sweep_all, SweepConfig};
    use crate::source::{SeedRange, Shard};

    /// The daemon-side property behind the whole subsystem: shard reports
    /// absorbed one by one — in any order — reproduce the unsharded sweep's
    /// digests and counters exactly.
    #[test]
    fn rolling_shard_merge_matches_the_one_shot_sweep() {
        let cases = AnyCase::all(false);
        let cfg = SweepConfig {
            jobs: 2,
            model_check: false,
            ..SweepConfig::default()
        };
        let range = SeedRange::new(0, 21).unwrap();
        let whole = sweep_all(&cases, &range, &cfg);
        for order in [[0u64, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let mut rolling = RollingMerge::new(3);
            assert!(!rolling.is_complete());
            for index in order {
                let shard = Shard::new(range, index, 3).unwrap();
                rolling
                    .absorb_shard(index, &sweep_all(&cases, &shard, &cfg))
                    .expect("each shard index merges once");
                assert!(rolling.is_done(index));
            }
            assert!(rolling.is_complete());
            assert_eq!(rolling.shards_done(), 3);
            assert_eq!(
                rolling.done_indices().iter().copied().collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
            assert_eq!(
                rolling.digests(),
                whole.cases.iter().map(|c| c.digest()).collect::<Vec<_>>(),
                "digests must converge on the unsharded sweep (order {order:?})"
            );
            for (merged, direct) in rolling.report().cases.iter().zip(&whole.cases) {
                assert_eq!(
                    merged.counters, direct.counters,
                    "VmCounters must survive the rolling merge exactly"
                );
            }
        }
    }

    #[test]
    fn empty_merge_reports_no_digests() {
        let rolling = RollingMerge::new(2);
        assert_eq!(rolling.digests(), Vec::<String>::new());
        assert_eq!(rolling.shards_total(), 2);
        assert!(!rolling.is_complete());
    }

    /// The recovery-critical property: a shard index can land exactly once,
    /// so a replayed checkpoint can never double-count its seeds.
    #[test]
    fn duplicate_and_out_of_range_shards_are_rejected() {
        let cases = AnyCase::all(false);
        let cfg = SweepConfig {
            model_check: false,
            ..SweepConfig::default()
        };
        let range = SeedRange::new(0, 6).unwrap();
        let shard = Shard::new(range, 0, 2).unwrap();
        let report = sweep_all(&cases, &shard, &cfg);
        let mut rolling = RollingMerge::new(2);
        rolling.absorb_shard(0, &report).expect("first merge");
        let scenarios = rolling.report().scenarios();
        let err = rolling.absorb_shard(0, &report).expect_err("duplicate");
        assert!(err.contains("already merged"), "{err}");
        let err = rolling.absorb_shard(2, &report).expect_err("out of range");
        assert!(err.contains("out of range"), "{err}");
        assert_eq!(
            rolling.report().scenarios(),
            scenarios,
            "rejected merges must not touch the aggregate"
        );
        assert_eq!(rolling.shards_done(), 1);
    }
}
