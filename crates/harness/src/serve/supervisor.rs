//! The shard-fleet supervisor: drives one job's worth of `semint sweep`
//! child processes and keeps the job correct when they die.
//!
//! Each shard of a job runs as a separate `semint sweep --shard k/n --save`
//! process.  Supervision is the point of the subsystem: a worker that
//! *crashes* (nonzero exit, unreadable report) or *wedges* (no stderr
//! heartbeat within the configured timeout — workers run with `--progress`,
//! whose rolling line doubles as a liveness signal) is killed and its exact
//! seed slice re-issued, up to a retry budget.  Because shards are
//! deterministic slices and the merge is order-insensitive, a re-issued
//! shard reproduces precisely the results the dead worker would have
//! produced, so the final digests are byte-identical to a one-shot sweep no
//! matter how many workers died along the way.
//!
//! With a `--state-dir`, the fleet is also *crash-safe against the daemon
//! itself*: every validated shard report is checkpointed (written and
//! fsync'd) into the state dir **before** its `shard-saved` event is
//! journaled, and only then absorbed into the in-memory merge — the
//! write-ahead discipline that lets `--resume` trust a journaled
//! checkpoint.  Shards the journal already accounts for are skipped
//! outright: a resumed job re-runs only its unaccounted slices.
//!
//! Workers deliberately run *without* `--trace`/`--time`: stage wall-clock
//! is nondeterministic and would pollute the saved TSV; the merged report
//! carries only digest-grade facts.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use semint_core::stats::SweepReport;

use super::journal::{checkpoint_name, content_digest, Journal, JournalEvent};
use super::queue::{FaultKind, JobQueue, JobSpec};
use super::ServeConfig;
use crate::cases::AnyCase;
use crate::trace::ServeLog;

/// One unit of fleet work: shard `index` of the job, on its
/// `attempt`-th try (0 = first issue, >0 = re-issue after a death).
#[derive(Debug, Clone, Copy)]
struct ShardTask {
    index: u64,
    attempt: u64,
}

/// A live worker process and the supervision state attached to it.
struct Worker {
    task: ShardTask,
    child: Child,
    /// Last time the worker's stderr produced bytes (the `--progress` line).
    heartbeat: Arc<Mutex<Instant>>,
    /// Rolling tail of the worker's stderr, for failure diagnostics.
    tail: Arc<Mutex<String>>,
    out_path: PathBuf,
    reader: Option<JoinHandle<()>>,
}

impl Worker {
    /// Kills the child (best effort), reaps it, and joins the stderr reader.
    fn kill_and_reap(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        let _ = std::fs::remove_file(&self.out_path);
    }

    /// The stderr tail, flattened for a one-line log message.
    fn stderr_tail(&self) -> String {
        let tail = self.tail.lock().expect("stderr tail poisoned").clone();
        tail.replace(['\r', '\n'], " ").trim().to_string()
    }
}

/// Why a worker's attempt did not produce a mergeable report.
enum Death {
    /// Nonzero exit; carries the stderr tail for diagnostics.
    Crashed(ExitStatus, String),
    Wedged,
    BadReport(String),
}

impl Death {
    fn describe(&self, timeout_ms: u64) -> String {
        match self {
            Death::Crashed(status, tail) => {
                let how = match status.code() {
                    Some(code) => format!("crashed (exit code {code})"),
                    None => "crashed (killed by signal)".into(),
                };
                if tail.is_empty() {
                    how
                } else {
                    format!("{how}; stderr tail: {tail}")
                }
            }
            Death::Wedged => format!("wedged (no heartbeat for {timeout_ms} ms)"),
            Death::BadReport(e) => format!("produced an unreadable report ({e})"),
        }
    }
}

/// Everything one job's fleet needs: immutable context threaded through
/// spawn/settle/re-issue instead of a nine-argument parameter list.
struct Fleet<'a> {
    cfg: &'a ServeConfig,
    workdir: &'a Path,
    state_dir: Option<&'a Path>,
    queue: &'a Mutex<JobQueue>,
    log: &'a ServeLog,
    journal: Option<&'a Journal>,
    job_id: u64,
    spec: JobSpec,
    timeout_ms: u64,
}

/// Runs one job's shard fleet to completion.  Returns `Ok(())` once every
/// shard has been merged (possibly after re-issues), or the reason the job
/// had to be abandoned.  Shards the job's merge already holds — replayed
/// checkpoints from `--resume` — are never re-issued.
pub fn run_job(
    cfg: &ServeConfig,
    workdir: &Path,
    state_dir: Option<&Path>,
    queue: &Mutex<JobQueue>,
    log: &ServeLog,
    journal: Option<&Journal>,
    job_id: u64,
) -> Result<(), String> {
    let (spec, already_done) = {
        let queue = queue.lock().expect("job queue poisoned");
        let job = queue
            .job(job_id)
            .ok_or_else(|| format!("job {job_id} vanished from the queue"))?;
        (job.spec.clone(), job.merge.done_indices().clone())
    };
    let fleet = Fleet {
        cfg,
        workdir,
        state_dir,
        queue,
        log,
        journal,
        job_id,
        spec,
        timeout_ms: cfg.heartbeat_timeout.as_millis() as u64,
    };
    fleet.run(already_done)
}

impl Fleet<'_> {
    /// Journals one event, best effort: losing a journal entry costs a
    /// redundant (idempotent) shard re-run on resume, which is the right
    /// trade against failing a healthy job over a transient disk error.
    fn journal_event(&self, event: &JournalEvent) {
        if let Some(journal) = self.journal {
            if let Err(e) = journal.append(event) {
                self.log
                    .event("journal-error", Some(self.job_id), &[("error", e)]);
            }
        }
    }

    fn run(&self, already_done: std::collections::BTreeSet<u64>) -> Result<(), String> {
        self.log.event(
            "job-start",
            Some(self.job_id),
            &[
                ("seeds", self.spec.range().spec()),
                ("profile", self.spec.profile.clone()),
                ("case", self.spec.case.clone()),
                ("shards", self.spec.shards.to_string()),
            ],
        );
        if !already_done.is_empty() {
            self.log.event(
                "shards-skipped",
                Some(self.job_id),
                &[(
                    "recovered",
                    already_done
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                )],
            );
        }
        let mut pending: VecDeque<ShardTask> = (0..self.spec.shards)
            .filter(|index| !already_done.contains(index))
            .map(|index| ShardTask { index, attempt: 0 })
            .collect();
        let mut running: Vec<Worker> = Vec::new();
        let mut abandon: Option<String> = None;

        'fleet: while abandon.is_none() && (!pending.is_empty() || !running.is_empty()) {
            // Fill free worker slots, re-issues first (they sit at the front).
            while running.len() < self.cfg.workers.max(1) {
                let Some(task) = pending.pop_front() else {
                    break;
                };
                match self.spawn_worker(task) {
                    Ok(worker) => running.push(worker),
                    Err(e) => {
                        abandon = Some(e);
                        break 'fleet;
                    }
                }
            }
            // Poll the fleet: reap exits, detect wedges.
            let mut index = 0;
            while index < running.len() {
                let exited = match running[index].child.try_wait() {
                    Ok(status) => status,
                    Err(e) => {
                        abandon = Some(format!("cannot poll a worker: {e}"));
                        break 'fleet;
                    }
                };
                if let Some(status) = exited {
                    let worker = running.swap_remove(index);
                    match self.settle_exit(worker, status) {
                        Ok(()) => {}
                        Err((task, death)) => {
                            if let Some(reason) = self.reissue_or_abandon(task, death, &mut pending)
                            {
                                abandon = Some(reason);
                                break 'fleet;
                            }
                        }
                    }
                    continue;
                }
                let stale = {
                    let beat = running[index].heartbeat.lock().expect("heartbeat poisoned");
                    beat.elapsed() > self.cfg.heartbeat_timeout
                };
                if stale {
                    let worker = running.swap_remove(index);
                    let task = worker.task;
                    worker.kill_and_reap();
                    if let Some(reason) = self.reissue_or_abandon(task, Death::Wedged, &mut pending)
                    {
                        abandon = Some(reason);
                        break 'fleet;
                    }
                    continue;
                }
                index += 1;
            }
            thread::sleep(std::time::Duration::from_millis(10));
        }
        // Whatever is still running is now pointless (job failed) or already
        // done (loop exited cleanly with an empty fleet).
        for worker in running {
            worker.kill_and_reap();
        }
        if let Some(reason) = abandon {
            self.log.event(
                "job-failed",
                Some(self.job_id),
                &[("reason", reason.clone())],
            );
            return Err(reason);
        }
        // Completeness check: the merged report must account for every seed
        // of every case before the job may call itself done.
        let case_count = if self.spec.case == "all" {
            AnyCase::all(false).len() as u64
        } else {
            1
        };
        let expected = self.spec.range().count() * case_count;
        let queue = self.queue.lock().expect("job queue poisoned");
        let job = queue
            .job(self.job_id)
            .ok_or_else(|| format!("job {} vanished from the queue", self.job_id))?;
        if !job.merge.is_complete() {
            return Err(format!(
                "fleet drained with only {}/{} shards merged",
                job.merge.shards_done(),
                job.merge.shards_total()
            ));
        }
        let merged = job.merge.report().scenarios();
        if merged != expected {
            return Err(format!(
                "merged report holds {merged} scenarios but the job spans {expected}"
            ));
        }
        self.log.event(
            "job-done",
            Some(self.job_id),
            &[
                ("scenarios", merged.to_string()),
                ("retries", job.retries.to_string()),
                ("digests", job.merge.digests().join(" ")),
            ],
        );
        Ok(())
    }

    /// Builds the exact `semint sweep` invocation for one shard attempt.
    /// The worker re-derives its slice from `--seeds`/`--shard`, so a
    /// re-issued attempt is the *same* deterministic work, not an
    /// approximation.
    fn worker_command(&self, task: ShardTask) -> (Command, PathBuf) {
        let out_path = self.workdir.join(format!(
            "job{}-shard{}-attempt{}.tsv",
            self.job_id, task.index, task.attempt
        ));
        let mut cmd = Command::new(&self.cfg.worker_binary);
        cmd.arg("sweep")
            .arg("--seeds")
            .arg(self.spec.range().spec())
            .arg("--shard")
            .arg(format!("{}/{}", task.index, self.spec.shards))
            .arg("--profile")
            .arg(&self.spec.profile)
            .arg("--jobs")
            .arg(self.spec.jobs.to_string())
            .arg("--batch")
            .arg(self.spec.batch.to_string())
            .arg("--save")
            .arg(&out_path)
            // The progress line is the heartbeat.  NOT --trace: tracing
            // implies --time and timings are nondeterministic.
            .arg("--progress");
        if !self.spec.model_check {
            cmd.arg("--no-model-check");
        }
        if self.spec.case != "all" {
            cmd.arg("--case").arg(&self.spec.case);
        }
        if let Some(fault) = self.spec.fault {
            // Only the first attempt is sabotaged: the re-issue must
            // succeed, which is exactly what the recovery tests assert.
            if task.attempt == 0 && fault.shard == task.index {
                let after = fault.after.to_string();
                match fault.kind {
                    FaultKind::Crash => {
                        cmd.arg("--die-after").arg(after);
                    }
                    FaultKind::Wedge => {
                        cmd.arg("--wedge-after").arg(after);
                    }
                    FaultKind::CorruptReport => {
                        cmd.arg("--corrupt-save").arg("garbage");
                    }
                    FaultKind::TruncateReport => {
                        cmd.arg("--corrupt-save").arg("truncate");
                    }
                }
            }
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        (cmd, out_path)
    }

    fn spawn_worker(&self, task: ShardTask) -> Result<Worker, String> {
        let (mut cmd, out_path) = self.worker_command(task);
        let mut child = cmd.spawn().map_err(|e| {
            format!(
                "cannot spawn worker {}: {e}",
                self.cfg.worker_binary.display()
            )
        })?;
        let stderr = child.stderr.take().expect("stderr was piped");
        let heartbeat = Arc::new(Mutex::new(Instant::now()));
        let tail = Arc::new(Mutex::new(String::new()));
        let beat = Arc::clone(&heartbeat);
        let tail_sink = Arc::clone(&tail);
        let reader = thread::spawn(move || {
            let mut stderr = stderr;
            let mut buf = [0u8; 512];
            loop {
                match stderr.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        *beat.lock().expect("heartbeat poisoned") = Instant::now();
                        let mut tail = tail_sink.lock().expect("stderr tail poisoned");
                        tail.push_str(&String::from_utf8_lossy(&buf[..n]));
                        if tail.chars().count() > 500 {
                            let keep: String = tail
                                .chars()
                                .rev()
                                .take(500)
                                .collect::<Vec<_>>()
                                .iter()
                                .rev()
                                .collect();
                            *tail = keep;
                        }
                    }
                }
            }
        });
        self.log.event(
            "shard-start",
            Some(self.job_id),
            &[
                ("shard", format!("{}/{}", task.index, self.spec.shards)),
                ("attempt", task.attempt.to_string()),
            ],
        );
        self.journal_event(&JournalEvent::ShardStarted {
            job: self.job_id,
            shard: task.index,
            attempt: task.attempt,
        });
        Ok(Worker {
            task,
            child,
            heartbeat,
            tail,
            out_path,
            reader: Some(reader),
        })
    }

    /// Handles a worker that exited on its own: validate its report,
    /// checkpoint it (write-ahead: synced to the state dir and journaled
    /// *before* the in-memory merge), or classify the death for re-issue.
    fn settle_exit(
        &self,
        mut worker: Worker,
        status: ExitStatus,
    ) -> Result<(), (ShardTask, Death)> {
        if let Some(reader) = worker.reader.take() {
            let _ = reader.join();
        }
        let task = worker.task;
        // Exit 0 = clean, 1 = sweep completed but found failures — both
        // write the report, and failures must flow into the merge.
        // Anything else (2 = usage, 42 = injected fault, signals) is a
        // crash.
        if !matches!(status.code(), Some(0 | 1)) {
            let tail = worker.stderr_tail();
            let _ = std::fs::remove_file(&worker.out_path);
            return Err((task, Death::Crashed(status, tail)));
        }
        let text = match std::fs::read_to_string(&worker.out_path) {
            Ok(text) => text,
            Err(e) => {
                let _ = std::fs::remove_file(&worker.out_path);
                return Err((task, Death::BadReport(e.to_string())));
            }
        };
        let report = SweepReport::from_tsv(&text);
        let _ = std::fs::remove_file(&worker.out_path);
        let report = match report {
            Ok(report) => report,
            Err(e) => return Err((task, Death::BadReport(e))),
        };
        // The report parsed: checkpoint it durably before the merge sees
        // it, so a journaled `shard-saved` always points at real bytes.
        if let Some(state_dir) = self.state_dir {
            let name = checkpoint_name(self.job_id, task.index);
            if let Err(e) = write_synced(&state_dir.join(&name), text.as_bytes()) {
                return Err((task, Death::BadReport(format!("checkpoint failed: {e}"))));
            }
            self.journal_event(&JournalEvent::ShardSaved {
                job: self.job_id,
                shard: task.index,
                attempt: task.attempt,
                path: name,
                digest: content_digest(text.as_bytes()),
            });
        }
        let mut queue = self.queue.lock().expect("job queue poisoned");
        let job = queue.job_mut(self.job_id).expect("running job exists");
        job.merge
            .absorb_shard(task.index, &report)
            .expect("the fleet never issues an already-merged shard");
        self.log.event(
            "shard-done",
            Some(self.job_id),
            &[
                ("shard", format!("{}/{}", task.index, self.spec.shards)),
                ("attempt", task.attempt.to_string()),
                (
                    "merged",
                    format!("{}/{}", job.merge.shards_done(), job.merge.shards_total()),
                ),
            ],
        );
        Ok(())
    }

    /// Re-issues a dead worker's slice, or — once the retry budget is
    /// spent — returns the reason the job must be abandoned.
    fn reissue_or_abandon(
        &self,
        task: ShardTask,
        death: Death,
        pending: &mut VecDeque<ShardTask>,
    ) -> Option<String> {
        let what = format!(
            "shard {}/{} attempt {} {}",
            task.index,
            self.spec.shards,
            task.attempt,
            death.describe(self.timeout_ms)
        );
        if task.attempt >= self.cfg.max_retries {
            return Some(format!(
                "{what}; retry budget ({}) exhausted",
                self.cfg.max_retries
            ));
        }
        {
            let mut queue = self.queue.lock().expect("job queue poisoned");
            if let Some(job) = queue.job_mut(self.job_id) {
                job.retries += 1;
            }
        }
        self.log.event(
            "shard-retry",
            Some(self.job_id),
            &[
                ("shard", format!("{}/{}", task.index, self.spec.shards)),
                ("attempt", task.attempt.to_string()),
                ("reason", what.clone()),
            ],
        );
        // Journaled only on an actual re-issue: abandonment is recorded as
        // the job's failure, so replayed retry counts match live ones.
        self.journal_event(&JournalEvent::ShardDied {
            job: self.job_id,
            shard: task.index,
            attempt: task.attempt,
            reason: what,
        });
        // Front of the queue: the missing slice is the job's critical path.
        pending.push_front(ShardTask {
            index: task.index,
            attempt: task.attempt + 1,
        });
        None
    }
}

/// Writes `bytes` to `path` and fsyncs before returning: checkpoint files
/// must be durable before the journal references them.
fn write_synced(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}
