//! The shard-fleet supervisor: drives one job's worth of `semint sweep`
//! child processes and keeps the job correct when they die.
//!
//! Each shard of a job runs as a separate `semint sweep --shard k/n --save`
//! process.  Supervision is the point of the subsystem: a worker that
//! *crashes* (nonzero exit, unreadable report) or *wedges* (no stderr
//! heartbeat within the configured timeout — workers run with `--progress`,
//! whose rolling line doubles as a liveness signal) is killed and its exact
//! seed slice re-issued, up to a retry budget.  Because shards are
//! deterministic slices and the merge is order-insensitive, a re-issued
//! shard reproduces precisely the results the dead worker would have
//! produced, so the final digests are byte-identical to a one-shot sweep no
//! matter how many workers died along the way.
//!
//! Workers deliberately run *without* `--trace`/`--time`: stage wall-clock
//! is nondeterministic and would pollute the saved TSV; the merged report
//! carries only digest-grade facts.

use std::collections::VecDeque;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use semint_core::stats::SweepReport;

use super::queue::{JobQueue, JobSpec};
use super::ServeConfig;
use crate::cases::AnyCase;
use crate::trace::ServeLog;

/// One unit of fleet work: shard `index` of the job, on its
/// `attempt`-th try (0 = first issue, >0 = re-issue after a death).
#[derive(Debug, Clone, Copy)]
struct ShardTask {
    index: u64,
    attempt: u64,
}

/// A live worker process and the supervision state attached to it.
struct Worker {
    task: ShardTask,
    child: Child,
    /// Last time the worker's stderr produced bytes (the `--progress` line).
    heartbeat: Arc<Mutex<Instant>>,
    /// Rolling tail of the worker's stderr, for failure diagnostics.
    tail: Arc<Mutex<String>>,
    out_path: PathBuf,
    reader: Option<JoinHandle<()>>,
}

impl Worker {
    /// Kills the child (best effort), reaps it, and joins the stderr reader.
    fn kill_and_reap(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        let _ = std::fs::remove_file(&self.out_path);
    }

    /// The stderr tail, flattened for a one-line log message.
    fn stderr_tail(&self) -> String {
        let tail = self.tail.lock().expect("stderr tail poisoned").clone();
        tail.replace(['\r', '\n'], " ").trim().to_string()
    }
}

/// Builds the exact `semint sweep` invocation for one shard attempt.  The
/// worker re-derives its slice from `--seeds`/`--shard`, so a re-issued
/// attempt is the *same* deterministic work, not an approximation.
fn worker_command(
    cfg: &ServeConfig,
    workdir: &Path,
    job_id: u64,
    spec: &JobSpec,
    task: ShardTask,
) -> (Command, PathBuf) {
    let out_path = workdir.join(format!(
        "job{job_id}-shard{}-attempt{}.tsv",
        task.index, task.attempt
    ));
    let mut cmd = Command::new(&cfg.worker_binary);
    cmd.arg("sweep")
        .arg("--seeds")
        .arg(spec.range().spec())
        .arg("--shard")
        .arg(format!("{}/{}", task.index, spec.shards))
        .arg("--profile")
        .arg(&spec.profile)
        .arg("--jobs")
        .arg(spec.jobs.to_string())
        .arg("--batch")
        .arg(spec.batch.to_string())
        .arg("--save")
        .arg(&out_path)
        // The progress line is the heartbeat.  NOT --trace: tracing implies
        // --time and timings are nondeterministic.
        .arg("--progress");
    if !spec.model_check {
        cmd.arg("--no-model-check");
    }
    if spec.case != "all" {
        cmd.arg("--case").arg(&spec.case);
    }
    if let Some(fault) = spec.fault {
        // Only the first attempt is sabotaged: the re-issue must succeed,
        // which is exactly what the crash-recovery test asserts.
        if task.attempt == 0 && fault.shard == task.index {
            cmd.arg("--die-after").arg(fault.after.to_string());
        }
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    (cmd, out_path)
}

fn spawn_worker(
    cfg: &ServeConfig,
    workdir: &Path,
    job_id: u64,
    spec: &JobSpec,
    task: ShardTask,
    log: &ServeLog,
) -> Result<Worker, String> {
    let (mut cmd, out_path) = worker_command(cfg, workdir, job_id, spec, task);
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn worker {}: {e}", cfg.worker_binary.display()))?;
    let stderr = child.stderr.take().expect("stderr was piped");
    let heartbeat = Arc::new(Mutex::new(Instant::now()));
    let tail = Arc::new(Mutex::new(String::new()));
    let beat = Arc::clone(&heartbeat);
    let tail_sink = Arc::clone(&tail);
    let reader = thread::spawn(move || {
        let mut stderr = stderr;
        let mut buf = [0u8; 512];
        loop {
            match stderr.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    *beat.lock().expect("heartbeat poisoned") = Instant::now();
                    let mut tail = tail_sink.lock().expect("stderr tail poisoned");
                    tail.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if tail.chars().count() > 500 {
                        let keep: String = tail
                            .chars()
                            .rev()
                            .take(500)
                            .collect::<Vec<_>>()
                            .iter()
                            .rev()
                            .collect();
                        *tail = keep;
                    }
                }
            }
        }
    });
    log.event(
        "shard-start",
        Some(job_id),
        &[
            ("shard", format!("{}/{}", task.index, spec.shards)),
            ("attempt", task.attempt.to_string()),
        ],
    );
    Ok(Worker {
        task,
        child,
        heartbeat,
        tail,
        out_path,
        reader: Some(reader),
    })
}

/// Why a worker's attempt did not produce a mergeable report.
enum Death {
    /// Nonzero exit; carries the stderr tail for diagnostics.
    Crashed(ExitStatus, String),
    Wedged,
    BadReport(String),
}

impl Death {
    fn describe(&self, timeout_ms: u64) -> String {
        match self {
            Death::Crashed(status, tail) => {
                let how = match status.code() {
                    Some(code) => format!("crashed (exit code {code})"),
                    None => "crashed (killed by signal)".into(),
                };
                if tail.is_empty() {
                    how
                } else {
                    format!("{how}; stderr tail: {tail}")
                }
            }
            Death::Wedged => format!("wedged (no heartbeat for {timeout_ms} ms)"),
            Death::BadReport(e) => format!("produced an unreadable report ({e})"),
        }
    }
}

/// Runs one job's shard fleet to completion.  Returns `Ok(())` once every
/// shard has been merged (possibly after re-issues), or the reason the job
/// had to be abandoned.
pub fn run_job(
    cfg: &ServeConfig,
    workdir: &Path,
    queue: &Mutex<JobQueue>,
    log: &ServeLog,
    job_id: u64,
) -> Result<(), String> {
    let spec = {
        let queue = queue.lock().expect("job queue poisoned");
        queue
            .job(job_id)
            .ok_or_else(|| format!("job {job_id} vanished from the queue"))?
            .spec
            .clone()
    };
    log.event(
        "job-start",
        Some(job_id),
        &[
            ("seeds", spec.range().spec()),
            ("profile", spec.profile.clone()),
            ("case", spec.case.clone()),
            ("shards", spec.shards.to_string()),
        ],
    );
    let mut pending: VecDeque<ShardTask> = (0..spec.shards)
        .map(|index| ShardTask { index, attempt: 0 })
        .collect();
    let mut running: Vec<Worker> = Vec::new();
    let timeout_ms = cfg.heartbeat_timeout.as_millis() as u64;
    let mut abandon: Option<String> = None;

    'fleet: while abandon.is_none() && (!pending.is_empty() || !running.is_empty()) {
        // Fill free worker slots, re-issues first (they sit at the front).
        while running.len() < cfg.workers.max(1) {
            let Some(task) = pending.pop_front() else {
                break;
            };
            match spawn_worker(cfg, workdir, job_id, &spec, task, log) {
                Ok(worker) => running.push(worker),
                Err(e) => {
                    abandon = Some(e);
                    break 'fleet;
                }
            }
        }
        // Poll the fleet: reap exits, detect wedges.
        let mut index = 0;
        while index < running.len() {
            let exited = match running[index].child.try_wait() {
                Ok(status) => status,
                Err(e) => {
                    abandon = Some(format!("cannot poll a worker: {e}"));
                    break 'fleet;
                }
            };
            if let Some(status) = exited {
                let worker = running.swap_remove(index);
                match settle_exit(worker, status, queue, log, job_id, &spec) {
                    Ok(()) => {}
                    Err((task, death)) => {
                        if let Some(reason) = reissue_or_abandon(
                            task,
                            death,
                            &mut pending,
                            queue,
                            log,
                            job_id,
                            cfg,
                            &spec,
                            timeout_ms,
                        ) {
                            abandon = Some(reason);
                            break 'fleet;
                        }
                    }
                }
                continue;
            }
            let stale = {
                let beat = running[index].heartbeat.lock().expect("heartbeat poisoned");
                beat.elapsed() > cfg.heartbeat_timeout
            };
            if stale {
                let worker = running.swap_remove(index);
                let task = worker.task;
                worker.kill_and_reap();
                if let Some(reason) = reissue_or_abandon(
                    task,
                    Death::Wedged,
                    &mut pending,
                    queue,
                    log,
                    job_id,
                    cfg,
                    &spec,
                    timeout_ms,
                ) {
                    abandon = Some(reason);
                    break 'fleet;
                }
                continue;
            }
            index += 1;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    }
    // Whatever is still running is now pointless (job failed) or already
    // done (loop exited cleanly with an empty fleet).
    for worker in running {
        worker.kill_and_reap();
    }
    if let Some(reason) = abandon {
        log.event("job-failed", Some(job_id), &[("reason", reason.clone())]);
        return Err(reason);
    }
    // Completeness check: the merged report must account for every seed of
    // every case before the job may call itself done.
    let case_count = if spec.case == "all" {
        AnyCase::all(false).len() as u64
    } else {
        1
    };
    let expected = spec.range().count() * case_count;
    let queue = queue.lock().expect("job queue poisoned");
    let job = queue
        .job(job_id)
        .ok_or_else(|| format!("job {job_id} vanished from the queue"))?;
    if !job.merge.is_complete() {
        return Err(format!(
            "fleet drained with only {}/{} shards merged",
            job.merge.shards_done(),
            job.merge.shards_total()
        ));
    }
    let merged = job.merge.report().scenarios();
    if merged != expected {
        return Err(format!(
            "merged report holds {merged} scenarios but the job spans {expected}"
        ));
    }
    log.event(
        "job-done",
        Some(job_id),
        &[
            ("scenarios", merged.to_string()),
            ("retries", job.retries.to_string()),
            ("digests", job.merge.digests().join(" ")),
        ],
    );
    Ok(())
}

/// Handles a worker that exited on its own: merge its report, or classify
/// the death for re-issue.
fn settle_exit(
    mut worker: Worker,
    status: ExitStatus,
    queue: &Mutex<JobQueue>,
    log: &ServeLog,
    job_id: u64,
    spec: &JobSpec,
) -> Result<(), (ShardTask, Death)> {
    if let Some(reader) = worker.reader.take() {
        let _ = reader.join();
    }
    // Exit 0 = clean, 1 = sweep completed but found failures — both write
    // the report, and failures must flow into the merge.  Anything else
    // (2 = usage, 42 = injected fault, signals) is a crash.
    if !matches!(status.code(), Some(0 | 1)) {
        let tail = worker.stderr_tail();
        let _ = std::fs::remove_file(&worker.out_path);
        return Err((worker.task, Death::Crashed(status, tail)));
    }
    let report = std::fs::read_to_string(&worker.out_path)
        .map_err(|e| e.to_string())
        .and_then(|text| SweepReport::from_tsv(&text));
    let _ = std::fs::remove_file(&worker.out_path);
    let report = match report {
        Ok(report) => report,
        Err(e) => return Err((worker.task, Death::BadReport(e))),
    };
    let mut queue = queue.lock().expect("job queue poisoned");
    let job = queue.job_mut(job_id).expect("running job exists");
    job.merge.absorb_shard(&report);
    log.event(
        "shard-done",
        Some(job_id),
        &[
            ("shard", format!("{}/{}", worker.task.index, spec.shards)),
            ("attempt", worker.task.attempt.to_string()),
            (
                "merged",
                format!("{}/{}", job.merge.shards_done(), job.merge.shards_total()),
            ),
        ],
    );
    Ok(())
}

/// Re-issues a dead worker's slice, or — once the retry budget is spent —
/// returns the reason the job must be abandoned.
#[allow(clippy::too_many_arguments)]
fn reissue_or_abandon(
    task: ShardTask,
    death: Death,
    pending: &mut VecDeque<ShardTask>,
    queue: &Mutex<JobQueue>,
    log: &ServeLog,
    job_id: u64,
    cfg: &ServeConfig,
    spec: &JobSpec,
    timeout_ms: u64,
) -> Option<String> {
    let what = format!(
        "shard {}/{} attempt {} {}",
        task.index,
        spec.shards,
        task.attempt,
        death.describe(timeout_ms)
    );
    if task.attempt >= cfg.max_retries {
        return Some(format!(
            "{what}; retry budget ({}) exhausted",
            cfg.max_retries
        ));
    }
    {
        let mut queue = queue.lock().expect("job queue poisoned");
        if let Some(job) = queue.job_mut(job_id) {
            job.retries += 1;
        }
    }
    log.event(
        "shard-retry",
        Some(job_id),
        &[
            ("shard", format!("{}/{}", task.index, spec.shards)),
            ("attempt", task.attempt.to_string()),
            ("reason", what),
        ],
    );
    // Front of the queue: the missing slice is the job's critical path.
    pending.push_front(ShardTask {
        index: task.index,
        attempt: task.attempt + 1,
    });
    None
}
