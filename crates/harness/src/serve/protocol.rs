//! The `semint serve` wire protocol: one JSON object per line over a
//! localhost TCP connection.
//!
//! The workspace is offline and dependency-free, so the protocol reuses the
//! crate's hand-rolled JSON machinery ([`crate::json`]) rather than pulling
//! in serde: every message is a single line stamped `"semint_serve": 1` and
//! the shared `"version"` field ([`crate::json::FORMAT_VERSION`]), parsed
//! with the same reader the bench format uses — so version-skew handling
//! (absent = v1, newer-than-me = error) is one code path for both formats.
//! Clients send one [`Request`] line and read one [`Response`] line; the
//! connection then closes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use super::queue::{FaultKind, FaultPlan, JobSpec};
use crate::json::{document_version, escape_json, Json, Reader, FORMAT_VERSION};

/// Default daemon port (override with `--port`; `0` picks an ephemeral one).
pub const DEFAULT_PORT: u16 = 7844;

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a sweep job.
    Submit(JobSpec),
    /// Report job states — all jobs, or one.
    Status {
        /// Restrict the report to this job id.
        job: Option<u64>,
    },
    /// Stop admitting jobs, finish the accepted ones, then exit.
    Shutdown,
}

/// A daemon-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Acknowledged (ping, shutdown).
    Ok,
    /// The submitted job's id.
    Submitted {
        /// Daemon-assigned job id.
        job: u64,
    },
    /// Job states.
    Status {
        /// Whether the daemon is draining toward exit.
        draining: bool,
        /// One snapshot per requested job, oldest first.
        jobs: Vec<JobStatus>,
    },
    /// The request was rejected or failed.
    Error(String),
}

/// One job's externally visible snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Daemon-assigned id.
    pub id: u64,
    /// `queued` / `running` / `done` / `failed`.
    pub state: String,
    /// The failure reason, when `state` is `failed`.
    pub error: Option<String>,
    /// Shards merged so far.
    pub shards_done: u64,
    /// Shards the job was split into.
    pub shards_total: u64,
    /// Shard re-issues so far (crashed or wedged workers).
    pub retries: u64,
    /// Scenarios in the rolling merge so far.
    pub scenarios: u64,
    /// Failures in the rolling merge so far.
    pub failures: u64,
    /// Per-case digests of the rolling merge.
    pub digests: Vec<String>,
    /// The rolling merge as a TSV report (the same format `--save` writes),
    /// so clients can reconstruct the full aggregates.
    pub report_tsv: String,
    /// Whether the job was rebuilt from the journal by `--resume` rather
    /// than submitted to the current daemon process.
    pub recovered: bool,
}

fn header() -> String {
    format!("{{\"semint_serve\": 1, \"version\": {FORMAT_VERSION}")
}

/// Renders a spec as one JSON object (shared with the journal's
/// `job-submitted` entries, so both formats evolve together).
pub(crate) fn render_spec(spec: &JobSpec) -> String {
    let mut out = format!(
        "{{\"seeds_start\": {}, \"seeds_end\": {}, \"profile\": \"{}\", \"case\": \"{}\", \
         \"shards\": {}, \"jobs\": {}, \"batch\": {}, \"model_check\": {}",
        spec.seeds.0,
        spec.seeds.1,
        escape_json(&spec.profile),
        escape_json(&spec.case),
        spec.shards,
        spec.jobs,
        spec.batch,
        spec.model_check,
    );
    if let Some(fault) = spec.fault {
        out.push_str(&format!(
            ", \"fault_shard\": {}, \"fault_after\": {}, \"fault_kind\": \"{}\"",
            fault.shard,
            fault.after,
            fault.kind.label()
        ));
    }
    out.push('}');
    out
}

fn render_status(status: &JobStatus) -> String {
    let mut out = format!(
        "{{\"id\": {}, \"state\": \"{}\"",
        status.id,
        escape_json(&status.state)
    );
    if let Some(error) = &status.error {
        out.push_str(&format!(", \"error\": \"{}\"", escape_json(error)));
    }
    out.push_str(&format!(
        ", \"shards_done\": {}, \"shards_total\": {}, \"retries\": {}, \
         \"scenarios\": {}, \"failures\": {}",
        status.shards_done, status.shards_total, status.retries, status.scenarios, status.failures,
    ));
    out.push_str(", \"digests\": [");
    for (i, digest) in status.digests.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape_json(digest)));
    }
    out.push_str(&format!(
        "], \"report_tsv\": \"{}\"",
        escape_json(&status.report_tsv)
    ));
    if status.recovered {
        out.push_str(", \"recovered\": true");
    }
    out.push('}');
    out
}

/// Renders a request as its one-line wire form (no trailing newline).
pub fn render_request(request: &Request) -> String {
    let mut out = header();
    match request {
        Request::Ping => out.push_str(", \"request\": \"ping\""),
        Request::Submit(spec) => {
            out.push_str(", \"request\": \"submit\", \"job\": ");
            out.push_str(&render_spec(spec));
        }
        Request::Status { job } => {
            out.push_str(", \"request\": \"status\"");
            if let Some(id) = job {
                out.push_str(&format!(", \"job\": {id}"));
            }
        }
        Request::Shutdown => out.push_str(", \"request\": \"shutdown\""),
    }
    out.push('}');
    out
}

/// Renders a response as its one-line wire form (no trailing newline).
pub fn render_response(response: &Response) -> String {
    let mut out = header();
    match response {
        Response::Ok => out.push_str(", \"response\": \"ok\""),
        Response::Submitted { job } => {
            out.push_str(&format!(", \"response\": \"submitted\", \"job\": {job}"));
        }
        Response::Status { draining, jobs } => {
            out.push_str(&format!(
                ", \"response\": \"status\", \"draining\": {draining}, \"jobs\": ["
            ));
            for (i, job) in jobs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_status(job));
            }
            out.push(']');
        }
        Response::Error(message) => {
            out.push_str(&format!(
                ", \"response\": \"error\", \"message\": \"{}\"",
                escape_json(message)
            ));
        }
    }
    out.push('}');
    out
}

/// Parses one wire line into a document, checking the protocol marker and
/// the shared version field.
fn parse_envelope(line: &str) -> Result<Json, String> {
    let mut reader = Reader::new(line);
    let doc = reader
        .value()
        .map_err(|e| format!("{} ({e})", reader.position()))?;
    if reader.peek_after_ws().is_some() {
        return Err("trailing content after message".into());
    }
    doc.require("semint_serve")?
        .as_u64("semint_serve")
        .and_then(|v| match v {
            1 => Ok(()),
            other => Err(format!("unsupported semint_serve protocol {other}")),
        })?;
    document_version(&doc)?;
    Ok(doc)
}

/// Parses one spec object back (shared with the journal's replay).
pub(crate) fn parse_spec(doc: &Json) -> Result<JobSpec, String> {
    let fault = match (doc.get("fault_shard"), doc.get("fault_after")) {
        (None, None) => None,
        (Some(shard), Some(after)) => Some(FaultPlan {
            shard: shard.as_u64("fault_shard")?,
            after: after.as_u64("fault_after")?,
            // Absent kind = a pre-FaultPlan writer; those could only crash.
            kind: match doc.get("fault_kind") {
                None => FaultKind::Crash,
                Some(value) => FaultKind::from_label(value.as_str("fault_kind")?)?,
            },
        }),
        _ => return Err("fault_shard and fault_after must be given together".into()),
    };
    Ok(JobSpec {
        seeds: (
            doc.require("seeds_start")?.as_u64("seeds_start")?,
            doc.require("seeds_end")?.as_u64("seeds_end")?,
        ),
        profile: doc.require("profile")?.as_str("profile")?.to_string(),
        case: doc.require("case")?.as_str("case")?.to_string(),
        shards: doc.require("shards")?.as_u64("shards")?,
        jobs: doc.require("jobs")?.as_u64("jobs")? as usize,
        batch: doc.require("batch")?.as_u64("batch")? as usize,
        model_check: doc.require("model_check")?.as_bool("model_check")?,
        fault,
    })
}

fn parse_status(doc: &Json) -> Result<JobStatus, String> {
    let Json::Array(digest_values) = doc.require("digests")? else {
        return Err("\"digests\": expected an array".into());
    };
    let mut digests = Vec::with_capacity(digest_values.len());
    for value in digest_values {
        digests.push(value.as_str("digest")?.to_string());
    }
    Ok(JobStatus {
        id: doc.require("id")?.as_u64("id")?,
        state: doc.require("state")?.as_str("state")?.to_string(),
        error: match doc.get("error") {
            None => None,
            Some(value) => Some(value.as_str("error")?.to_string()),
        },
        shards_done: doc.require("shards_done")?.as_u64("shards_done")?,
        shards_total: doc.require("shards_total")?.as_u64("shards_total")?,
        retries: doc.require("retries")?.as_u64("retries")?,
        scenarios: doc.require("scenarios")?.as_u64("scenarios")?,
        failures: doc.require("failures")?.as_u64("failures")?,
        digests,
        report_tsv: doc.require("report_tsv")?.as_str("report_tsv")?.to_string(),
        // Absent = a pre-journal writer; nothing it reports was recovered.
        recovered: match doc.get("recovered") {
            None => false,
            Some(value) => value.as_bool("recovered")?,
        },
    })
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse_envelope(line)?;
    match doc.require("request")?.as_str("request")? {
        "ping" => Ok(Request::Ping),
        "submit" => Ok(Request::Submit(parse_spec(doc.require("job")?)?)),
        "status" => Ok(Request::Status {
            job: match doc.get("job") {
                None => None,
                Some(value) => Some(value.as_u64("job")?),
            },
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request {other:?}")),
    }
}

/// Parses one response line.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let doc = parse_envelope(line)?;
    match doc.require("response")?.as_str("response")? {
        "ok" => Ok(Response::Ok),
        "submitted" => Ok(Response::Submitted {
            job: doc.require("job")?.as_u64("job")?,
        }),
        "status" => {
            let Json::Array(job_values) = doc.require("jobs")? else {
                return Err("\"jobs\": expected an array".into());
            };
            let mut jobs = Vec::with_capacity(job_values.len());
            for value in job_values {
                jobs.push(parse_status(value)?);
            }
            Ok(Response::Status {
                draining: doc.require("draining")?.as_bool("draining")?,
                jobs,
            })
        }
        "error" => Ok(Response::Error(
            doc.require("message")?.as_str("message")?.to_string(),
        )),
        other => Err(format!("unknown response {other:?}")),
    }
}

/// How many connect attempts [`call`] makes before giving up.
const CALL_CONNECT_ATTEMPTS: u32 = 6;
/// First retry delay; doubles per attempt up to [`CALL_BACKOFF_CAP`].
const CALL_BACKOFF_START: Duration = Duration::from_millis(25);
/// Retry delays never exceed this.
const CALL_BACKOFF_CAP: Duration = Duration::from_millis(400);

/// Deterministic jitter for attempt `attempt` against `addr`: FNV-1a over
/// the address and the attempt index, finalized and reduced to at most half
/// the base delay.  No clocks, no RNG — the same client retries on the same
/// schedule every run, which keeps the chaos drill reproducible.
fn backoff_jitter(addr: &str, attempt: u32, base: Duration) -> Duration {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in addr.bytes().chain(attempt.to_le_bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Murmur-style finalizer: FNV's low bits are weak and the modulus below
    // only looks at them.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    let half_ms = (base.as_millis() as u64 / 2).max(1);
    Duration::from_millis(hash % half_ms)
}

/// Connects to `addr`, retrying refused/reset connections with capped
/// exponential backoff: a client racing the daemon's accept loop (`semint
/// submit` right after `semint serve`) waits the race out instead of dying.
/// Only *connect-phase* failures retry — once a request has been written,
/// retrying could double-submit a job.
fn connect_with_backoff(addr: &str) -> Result<TcpStream, String> {
    let mut delay = CALL_BACKOFF_START;
    let mut last_error = String::new();
    for attempt in 0..CALL_CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(delay + backoff_jitter(addr, attempt, delay));
            delay = (delay * 2).min(CALL_BACKOFF_CAP);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                last_error = e.to_string();
            }
            Err(e) => return Err(format!("cannot reach daemon at {addr}: {e}")),
        }
    }
    Err(format!(
        "cannot reach daemon at {addr} after {CALL_CONNECT_ATTEMPTS} attempts: {last_error}"
    ))
}

/// Sends one request to a daemon at `addr` (e.g. `127.0.0.1:7844`) and
/// reads back its one-line response.  Both directions carry a generous
/// timeout so a wedged daemon surfaces as an error, not a hang.  Refused
/// connections are retried with capped, deterministically jittered backoff;
/// request/response I/O is never retried (a re-sent submit is a new job).
pub fn call(addr: &str, request: &Request) -> Result<Response, String> {
    let stream = connect_with_backoff(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(60))))
        .map_err(|e| format!("cannot set socket timeouts: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;
    writer
        .write_all(format!("{}\n", render_request(request)).as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("daemon at {addr} closed the connection silently"));
    }
    parse_response(line.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            seeds: (0, 120),
            profile: "deep".into(),
            case: "all".into(),
            shards: 4,
            jobs: 2,
            batch: 8,
            model_check: true,
            fault: Some(FaultPlan {
                shard: 1,
                after: 5,
                kind: FaultKind::Crash,
            }),
        }
    }

    #[test]
    fn requests_round_trip_including_fault_and_optional_job() {
        let mut requests = vec![
            Request::Ping,
            Request::Submit(sample_spec()),
            Request::Submit(JobSpec {
                fault: None,
                ..sample_spec()
            }),
            Request::Status { job: None },
            Request::Status { job: Some(3) },
            Request::Shutdown,
        ];
        // Every fault kind survives the wire.
        for kind in FaultKind::ALL {
            requests.push(Request::Submit(JobSpec {
                fault: Some(FaultPlan {
                    shard: 0,
                    after: 2,
                    kind,
                }),
                ..sample_spec()
            }));
        }
        for request in requests {
            let line = render_request(&request);
            assert!(!line.contains('\n'), "one line per message: {line}");
            assert_eq!(parse_request(&line).expect("round trip"), request);
        }
    }

    #[test]
    fn a_fault_without_a_kind_reads_as_a_crash() {
        // Pre-FaultPlan writers sent only the shard/after pair.
        let line = render_request(&Request::Submit(sample_spec()));
        let legacy = line.replace(", \"fault_kind\": \"crash\"", "");
        assert_ne!(line, legacy);
        assert_eq!(
            parse_request(&legacy).expect("legacy fault parses"),
            Request::Submit(sample_spec())
        );
        let bogus = line.replace("\"fault_kind\": \"crash\"", "\"fault_kind\": \"segfault\"");
        assert!(parse_request(&bogus).unwrap_err().contains("fault kind"));
    }

    #[test]
    fn responses_round_trip_including_status_snapshots() {
        let responses = [
            Response::Ok,
            Response::Submitted { job: 7 },
            Response::Error("queue is full (4 of 4 jobs unfinished)".into()),
            Response::Status {
                draining: true,
                jobs: vec![
                    JobStatus {
                        id: 0,
                        state: "done".into(),
                        error: None,
                        shards_done: 4,
                        shards_total: 4,
                        retries: 1,
                        scenarios: 360,
                        failures: 0,
                        digests: vec!["sharedmem:abc".into(), "affine:def".into()],
                        report_tsv: "case\tsharedmem\nscenarios\t120\n".into(),
                        recovered: true,
                    },
                    JobStatus {
                        id: 1,
                        state: "failed".into(),
                        error: Some("shard 2/4 exhausted 2 retries".into()),
                        shards_done: 3,
                        shards_total: 4,
                        retries: 3,
                        scenarios: 270,
                        failures: 2,
                        digests: vec![],
                        report_tsv: String::new(),
                        recovered: false,
                    },
                ],
            },
        ];
        for response in responses {
            let line = render_response(&response);
            assert!(!line.contains('\n'), "one line per message: {line}");
            assert_eq!(parse_response(&line).expect("round trip"), response);
        }
    }

    #[test]
    fn malformed_and_version_skewed_messages_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{}").unwrap_err().contains("semint_serve"));
        assert!(parse_request("{\"semint_serve\": 2}")
            .unwrap_err()
            .contains("protocol"));
        let line = render_request(&Request::Ping);
        assert!(parse_request(&format!("{line} extra"))
            .unwrap_err()
            .contains("trailing"));
        // Newer documents are rejected with the shared upgrade hint…
        let future = line.replace(&format!("\"version\": {FORMAT_VERSION}"), "\"version\": 99");
        assert!(parse_request(&future).unwrap_err().contains("newer"));
        // …while an absent version field reads as v1 and is tolerated.
        let legacy = line.replace(&format!(", \"version\": {FORMAT_VERSION}"), "");
        assert_ne!(line, legacy);
        assert_eq!(parse_request(&legacy).unwrap(), Request::Ping);
        // A fault shard without its pair is rejected.
        let submit = render_request(&Request::Submit(sample_spec()));
        let broken = submit.replace(", \"fault_after\": 5", "");
        assert!(parse_request(&broken).unwrap_err().contains("together"));
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(100);
        for attempt in 1..CALL_CONNECT_ATTEMPTS {
            let a = backoff_jitter("127.0.0.1:7844", attempt, base);
            assert_eq!(a, backoff_jitter("127.0.0.1:7844", attempt, base));
            assert!(a < base / 2 + Duration::from_millis(1), "{a:?}");
        }
        // Different clients (addresses) jitter apart — that is the point.
        assert_ne!(
            backoff_jitter("127.0.0.1:7844", 1, base),
            backoff_jitter("127.0.0.1:7845", 1, base),
        );
    }

    #[test]
    fn call_retries_until_a_late_listener_binds() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpListener;
        // Reserve a port, then free it: the first connect attempts are
        // refused, exactly like `semint submit` racing `semint serve`.
        let port = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let listener = TcpListener::bind(("127.0.0.1", port)).expect("port is still free");
            let (stream, _) = listener.accept().expect("client retried into us");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(parse_request(line.trim_end()).unwrap(), Request::Ping);
            let mut stream = stream;
            stream
                .write_all(format!("{}\n", render_response(&Response::Ok)).as_bytes())
                .unwrap();
        });
        let response = call(&addr, &Request::Ping).expect("backoff outlives the bind race");
        assert_eq!(response, Response::Ok);
        server.join().unwrap();
    }

    #[test]
    fn call_gives_up_with_the_attempt_count_after_capped_backoff() {
        // Bind-then-drop: nothing will ever listen here again in this test.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let err =
            call(&format!("127.0.0.1:{port}"), &Request::Ping).expect_err("nobody is listening");
        assert!(err.contains("attempts"), "{err}");
    }
}
