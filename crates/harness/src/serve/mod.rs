//! `semint serve` — a long-running sweep-orchestration daemon.
//!
//! One-shot `semint sweep` re-pays process startup and leaves supervision
//! to the shell.  The serve subsystem turns the existing sharded sweep
//! machinery into a service: a daemon owns a bounded FIFO [`queue`] of
//! sweep jobs, and for each job its [`supervisor`] spawns N shard workers
//! as `semint sweep --shard i/N --save` child processes, streams their
//! saved reports back, and [`merge`]s them live into rolling per-case
//! digests a client can watch with `semint status`.  The [`protocol`] is
//! hand-rolled line-JSON over localhost TCP — the workspace is offline and
//! dependency-free, so there is no serde, no tokio, no HTTP; just
//! `std::net` and the crate's own JSON reader.
//!
//! The deterministic foundation makes supervision *safe*: shards are exact
//! k-of-n seed slices and the merge is order-insensitive, so a worker that
//! crashes or wedges can be killed and its slice re-issued, and the final
//! merged digests are still byte-identical to a one-shot `semint sweep`
//! over the same range.  Failure is handled, never hidden: a shard that
//! exhausts its retry budget fails the whole job with a reason, and the
//! completeness check refuses to mark a job done unless every seed of
//! every case is accounted for.

pub mod merge;
pub mod protocol;
pub mod queue;
pub mod supervisor;

pub use merge::RollingMerge;
pub use protocol::{
    call, parse_request, parse_response, render_request, render_response, JobStatus, Request,
    Response, DEFAULT_PORT,
};
pub use queue::{Fault, JobQueue, JobSpec, JobState};

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::trace::ServeLog;

/// Everything a daemon needs to run: where to listen, how big the fleet
/// and queue are, how supervision behaves, and which binary to spawn as
/// shard workers (normally the daemon's own executable).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Worker slots per job: how many shard processes run concurrently.
    pub workers: usize,
    /// Bounded admission: at most this many unfinished jobs.
    pub queue_capacity: usize,
    /// A worker with no stderr heartbeat for this long is wedged.
    pub heartbeat_timeout: Duration,
    /// Re-issues per shard before the job is abandoned.
    pub max_retries: u64,
    /// The `semint` binary to spawn as workers.
    pub worker_binary: PathBuf,
    /// Where to write the JSONL daemon log (None = no log file).
    pub log_path: Option<PathBuf>,
    /// Mirror log events to stdout (the foreground `semint serve` mode).
    pub echo: bool,
}

impl ServeConfig {
    /// A config with the documented CLI defaults, spawning `worker_binary`.
    pub fn new(worker_binary: PathBuf) -> ServeConfig {
        ServeConfig {
            port: DEFAULT_PORT,
            workers: 4,
            queue_capacity: 16,
            heartbeat_timeout: Duration::from_millis(30_000),
            max_retries: 2,
            worker_binary,
            log_path: None,
            echo: false,
        }
    }
}

/// A running daemon: accept loop + scheduler thread, joined on shutdown.
pub struct Daemon {
    port: u16,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

/// State shared between the accept loop and the scheduler.
struct Shared {
    queue: Mutex<JobQueue>,
    log: ServeLog,
    cfg: ServeConfig,
    workdir: PathBuf,
}

impl Daemon {
    /// Binds the listener, creates the scratch directory for shard reports,
    /// and starts the accept and scheduler threads.  Returns once the
    /// daemon is reachable; [`Daemon::join`] blocks until a shutdown
    /// request has drained the queue.
    pub fn spawn(cfg: ServeConfig) -> Result<Daemon, String> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", cfg.port))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("cannot read the bound address: {e}"))?
            .port();
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set the listener nonblocking: {e}"))?;
        let workdir =
            std::env::temp_dir().join(format!("semint-serve-{}-{port}", std::process::id()));
        std::fs::create_dir_all(&workdir)
            .map_err(|e| format!("cannot create {}: {e}", workdir.display()))?;
        let log = ServeLog::new(cfg.log_path.as_deref(), cfg.echo)
            .map_err(|e| format!("cannot open the daemon log: {e}"))?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(JobQueue::new(cfg.queue_capacity, cfg.workers)),
            log,
            cfg,
            workdir,
        });
        shared.log.event(
            "daemon-start",
            None,
            &[
                ("port", port.to_string()),
                ("workers", shared.cfg.workers.to_string()),
                ("queue_capacity", shared.cfg.queue_capacity.to_string()),
            ],
        );
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(listener, &shared, &stop))
        };
        let scheduler = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::spawn(move || scheduler_loop(&shared, &stop))
        };
        Ok(Daemon {
            port,
            accept: Some(accept),
            scheduler: Some(scheduler),
            stop,
        })
    }

    /// The port the daemon actually listens on (resolves `port: 0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Blocks until the daemon has drained and exited (a client must send
    /// a shutdown request — the daemon runs until told to stop).
    pub fn join(mut self) {
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        // The scheduler set the stop flag on drain; the accept loop sees it
        // within one poll interval.
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // A dropped (not joined) daemon still stops its threads instead of
        // leaking them — tests that panic mid-run rely on this.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// How often the nonblocking accept loop and the scheduler re-check for
/// work or the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(shared);
                // One detached thread per connection: the protocol is one
                // request line, one response line, close — nothing lingers.
                thread::spawn(move || serve_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut line = String::new();
    if BufReader::new(stream).read_line(&mut line).is_err() {
        return;
    }
    let response = match parse_request(line.trim_end()) {
        Err(e) => Response::Error(format!("bad request: {e}")),
        Ok(request) => handle_request(request, shared),
    };
    let _ = writer.write_all(format!("{}\n", render_response(&response)).as_bytes());
    let _ = writer.flush();
}

fn handle_request(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Ping => Response::Ok,
        Request::Submit(spec) => {
            let mut queue = shared.queue.lock().expect("job queue poisoned");
            match queue.submit(spec) {
                Ok(job) => {
                    shared.log.event(
                        "job-queued",
                        Some(job),
                        &[("pending", queue.snapshot().len().to_string())],
                    );
                    Response::Submitted { job }
                }
                Err(e) => Response::Error(e),
            }
        }
        Request::Status { job } => {
            let queue = shared.queue.lock().expect("job queue poisoned");
            let draining = queue.draining();
            let jobs = match job {
                None => queue.snapshot(),
                Some(id) => match queue.job(id) {
                    Some(job) => vec![job.status()],
                    None => return Response::Error(format!("no job {id}")),
                },
            };
            Response::Status { draining, jobs }
        }
        Request::Shutdown => {
            let mut queue = shared.queue.lock().expect("job queue poisoned");
            queue.drain();
            shared.log.event("drain", None, &[]);
            Response::Ok
        }
    }
}

fn scheduler_loop(shared: &Arc<Shared>, stop: &Arc<AtomicBool>) {
    loop {
        // An externally set stop flag (a dropped daemon) wins over queued
        // work; a clean shutdown drains the queue first.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let next = {
            let mut queue = shared.queue.lock().expect("job queue poisoned");
            if queue.is_drained() {
                break;
            }
            queue.take_next()
        };
        match next {
            None => {
                thread::sleep(POLL_INTERVAL);
            }
            Some(job_id) => {
                let result = supervisor::run_job(
                    &shared.cfg,
                    &shared.workdir,
                    &shared.queue,
                    &shared.log,
                    job_id,
                );
                shared
                    .queue
                    .lock()
                    .expect("job queue poisoned")
                    .finish_active(result);
            }
        }
    }
    shared.log.event("daemon-exit", None, &[]);
    let _ = std::fs::remove_dir_all(&shared.workdir);
    stop.store(true, Ordering::SeqCst);
}
