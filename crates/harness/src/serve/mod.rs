//! `semint serve` — a long-running sweep-orchestration daemon.
//!
//! One-shot `semint sweep` re-pays process startup and leaves supervision
//! to the shell.  The serve subsystem turns the existing sharded sweep
//! machinery into a service: a daemon owns a bounded FIFO [`queue`] of
//! sweep jobs, and for each job its [`supervisor`] spawns N shard workers
//! as `semint sweep --shard i/N --save` child processes, streams their
//! saved reports back, and [`merge`]s them live into rolling per-case
//! digests a client can watch with `semint status`.  The [`protocol`] is
//! hand-rolled line-JSON over localhost TCP — the workspace is offline and
//! dependency-free, so there is no serde, no tokio, no HTTP; just
//! `std::net` and the crate's own JSON reader.
//!
//! The deterministic foundation makes supervision *safe*: shards are exact
//! k-of-n seed slices and the merge is order-insensitive, so a worker that
//! crashes or wedges can be killed and its slice re-issued, and the final
//! merged digests are still byte-identical to a one-shot `semint sweep`
//! over the same range.  Failure is handled, never hidden: a shard that
//! exhausts its retry budget fails the whole job with a reason, and the
//! completeness check refuses to mark a job done unless every seed of
//! every case is accounted for.
//!
//! With a `--state-dir`, the daemon also survives *its own* death: every
//! job lifecycle transition is appended to an fsync'd JSONL [`journal`],
//! completed shard reports are checkpointed into the state dir before they
//! are journaled, and `semint serve --resume` replays the journal —
//! digest-verifying every checkpoint — so an interrupted job re-runs only
//! its unaccounted shards and still converges on the one-shot digests.
//! The [`chaos`] drill turns that invariant into a repeatable test: a
//! seed-derived fault schedule (worker crashes, wedges, corrupted reports)
//! against a live daemon that is then killed mid-job and resumed.

pub mod chaos;
pub mod journal;
pub mod merge;
pub mod protocol;
pub mod queue;
pub mod supervisor;

pub use chaos::{run_drills, ChaosConfig, DrillOutcome};
pub use journal::{
    content_digest, Journal, JournalEvent, RecoveredJob, RecoveredOutcome, RecoveredState,
};
pub use merge::RollingMerge;
pub use protocol::{
    call, parse_request, parse_response, render_request, render_response, JobStatus, Request,
    Response, DEFAULT_PORT,
};
pub use queue::{FaultKind, FaultPlan, JobQueue, JobSpec, JobState};

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use semint_core::stats::SweepReport;

use crate::trace::ServeLog;

/// Everything a daemon needs to run: where to listen, how big the fleet
/// and queue are, how supervision behaves, and which binary to spawn as
/// shard workers (normally the daemon's own executable).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Worker slots per job: how many shard processes run concurrently.
    pub workers: usize,
    /// Bounded admission: at most this many unfinished jobs.
    pub queue_capacity: usize,
    /// A worker with no stderr heartbeat for this long is wedged.
    pub heartbeat_timeout: Duration,
    /// Re-issues per shard before the job is abandoned.
    pub max_retries: u64,
    /// The `semint` binary to spawn as workers.
    pub worker_binary: PathBuf,
    /// Where to write the JSONL daemon log (None = no log file).
    pub log_path: Option<PathBuf>,
    /// Mirror log events to stdout (the foreground `semint serve` mode).
    pub echo: bool,
    /// Durable state: the journal and shard checkpoints live here.
    /// `None` keeps all job state in memory, as before.
    pub state_dir: Option<PathBuf>,
    /// Replay the state dir's journal at startup and adopt its jobs.
    pub resume: bool,
}

impl ServeConfig {
    /// A config with the documented CLI defaults, spawning `worker_binary`.
    pub fn new(worker_binary: PathBuf) -> ServeConfig {
        ServeConfig {
            port: DEFAULT_PORT,
            workers: 4,
            queue_capacity: 16,
            heartbeat_timeout: Duration::from_millis(30_000),
            max_retries: 2,
            worker_binary,
            log_path: None,
            echo: false,
            state_dir: None,
            resume: false,
        }
    }
}

/// A running daemon: accept loop + scheduler thread, joined on shutdown.
pub struct Daemon {
    port: u16,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

/// State shared between the accept loop and the scheduler.
struct Shared {
    queue: Mutex<JobQueue>,
    log: ServeLog,
    cfg: ServeConfig,
    workdir: PathBuf,
    journal: Option<Journal>,
}

impl Daemon {
    /// Binds the listener, creates the scratch directory for shard reports,
    /// and starts the accept and scheduler threads.  Returns once the
    /// daemon is reachable; [`Daemon::join`] blocks until a shutdown
    /// request has drained the queue.
    pub fn spawn(cfg: ServeConfig) -> Result<Daemon, String> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", cfg.port))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("cannot read the bound address: {e}"))?
            .port();
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set the listener nonblocking: {e}"))?;
        let workdir =
            std::env::temp_dir().join(format!("semint-serve-{}-{port}", std::process::id()));
        std::fs::create_dir_all(&workdir)
            .map_err(|e| format!("cannot create {}: {e}", workdir.display()))?;
        let log = ServeLog::new(cfg.log_path.as_deref(), cfg.echo)
            .map_err(|e| format!("cannot open the daemon log: {e}"))?;
        let mut queue = JobQueue::new(cfg.queue_capacity, cfg.workers);
        let journal = match open_state(&cfg, &mut queue, &log) {
            Ok(journal) => journal,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&workdir);
                return Err(e);
            }
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(queue),
            log,
            cfg,
            workdir,
            journal,
        });
        shared.log.event(
            "daemon-start",
            None,
            &[
                ("port", port.to_string()),
                ("workers", shared.cfg.workers.to_string()),
                ("queue_capacity", shared.cfg.queue_capacity.to_string()),
            ],
        );
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(listener, &shared, &stop))
        };
        let scheduler = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::spawn(move || scheduler_loop(&shared, &stop))
        };
        Ok(Daemon {
            port,
            accept: Some(accept),
            scheduler: Some(scheduler),
            stop,
        })
    }

    /// The port the daemon actually listens on (resolves `port: 0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Blocks until the daemon has drained and exited (a client must send
    /// a shutdown request — the daemon runs until told to stop).
    pub fn join(mut self) {
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        // The scheduler set the stop flag on drain; the accept loop sees it
        // within one poll interval.
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // A dropped (not joined) daemon still stops its threads instead of
        // leaking them — tests that panic mid-run rely on this.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// How often the nonblocking accept loop and the scheduler re-check for
/// work or the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Opens the durable state (journal + checkpoints) per the config, and on
/// `--resume` replays the journal into `queue`.  Refuses the confusable
/// combinations outright: `--resume` without a state dir or journal has
/// nothing to recover, and a fresh (non-resume) start over an existing
/// journal would shadow recoverable work.
fn open_state(
    cfg: &ServeConfig,
    queue: &mut JobQueue,
    log: &ServeLog,
) -> Result<Option<Journal>, String> {
    let Some(state_dir) = &cfg.state_dir else {
        if cfg.resume {
            return Err("--resume requires --state-dir (the journal lives there)".into());
        }
        return Ok(None);
    };
    std::fs::create_dir_all(state_dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;
    let journal_path = Journal::path_in(state_dir);
    let has_journal = std::fs::metadata(&journal_path)
        .map(|meta| meta.len() > 0)
        .unwrap_or(false);
    if cfg.resume && !has_journal {
        return Err(format!(
            "--resume found no journal at {}",
            journal_path.display()
        ));
    }
    if !cfg.resume && has_journal {
        return Err(format!(
            "state dir {} already holds a journal; pass --resume to recover its jobs, \
             or point --state-dir somewhere fresh",
            state_dir.display()
        ));
    }
    let journal = Journal::open(state_dir)?;
    if cfg.resume {
        let text = std::fs::read_to_string(journal.path())
            .map_err(|e| format!("cannot read journal {}: {e}", journal.path().display()))?;
        let recovered = journal::replay(&text)
            .map_err(|e| format!("journal {} does not replay: {e}", journal.path().display()))?;
        let torn = recovered.torn_lines;
        let restored = restore_jobs(queue, state_dir, log, recovered)?;
        log.event(
            "daemon-resume",
            None,
            &[
                ("jobs", restored.to_string()),
                ("torn_lines", torn.to_string()),
            ],
        );
        // The resume marker must be durable before the daemon touches any
        // recovered job: replay partitions history at the *last* marker.
        journal.append(&JournalEvent::Resumed { jobs: restored })?;
    }
    Ok(Some(journal))
}

/// Rebuilds the queue from a replayed journal.  Every journaled checkpoint
/// is re-read, digest-verified, and re-parsed before it is absorbed; a
/// checkpoint that fails any of those is logged and its shard re-issued —
/// a completed job whose checkpoints no longer verify is demoted and
/// re-run rather than trusted.
fn restore_jobs(
    queue: &mut JobQueue,
    state_dir: &Path,
    log: &ServeLog,
    recovered: RecoveredState,
) -> Result<u64, String> {
    let mut restored = 0u64;
    for job in recovered.jobs {
        let mut merge = RollingMerge::new(job.spec.shards);
        for (shard, (name, digest)) in &job.saved {
            let verified = std::fs::read(state_dir.join(name))
                .map_err(|e| e.to_string())
                .and_then(|bytes| {
                    let actual = content_digest(&bytes);
                    if actual != *digest {
                        return Err(format!(
                            "content digest mismatch (journal says {digest}, file has {actual})"
                        ));
                    }
                    String::from_utf8(bytes).map_err(|_| "checkpoint is not UTF-8".to_string())
                })
                .and_then(|text| SweepReport::from_tsv(&text))
                .and_then(|report| merge.absorb_shard(*shard, &report));
            if let Err(e) = verified {
                log.event(
                    "checkpoint-invalid",
                    Some(job.id),
                    &[
                        ("shard", shard.to_string()),
                        ("path", name.clone()),
                        ("reason", e),
                    ],
                );
            }
        }
        let state = match job.outcome {
            RecoveredOutcome::Failed(reason) => JobState::Failed(reason),
            RecoveredOutcome::Completed if merge.is_complete() => JobState::Done,
            // Incomplete, or "completed" with unverifiable checkpoints:
            // re-enqueue; the fleet re-runs only the missing shards.
            _ => JobState::Queued,
        };
        queue.restore(job.spec, state, merge, job.retries)?;
        restored += 1;
    }
    Ok(restored)
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(shared);
                // One detached thread per connection: the protocol is one
                // request line, one response line, close — nothing lingers.
                thread::spawn(move || serve_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Longest request line the daemon will buffer, in bytes (newline
/// included).  Anything longer is rejected with an `Error` envelope —
/// a garbage-sending client must never grow the reader unboundedly.
pub const MAX_REQUEST_LINE: u64 = 64 * 1024;

/// Reads one request line from a client, bounded by [`MAX_REQUEST_LINE`]
/// and the socket's read timeout.  Every failure mode — oversized line,
/// invalid UTF-8, a stalled or silent peer — comes back as an error the
/// connection handler turns into an `Error` response.
fn read_request_line(stream: TcpStream) -> Result<String, String> {
    let mut buf = Vec::new();
    BufReader::new(stream.take(MAX_REQUEST_LINE + 1))
        .read_until(b'\n', &mut buf)
        .map_err(|e| format!("cannot read the request line: {e}"))?;
    if buf.len() as u64 > MAX_REQUEST_LINE {
        return Err(format!(
            "request line exceeds {MAX_REQUEST_LINE} bytes; one request is one line"
        ));
    }
    String::from_utf8(buf).map_err(|_| "request line is not valid UTF-8".into())
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let response = match read_request_line(stream) {
        Err(e) => Response::Error(format!("bad request: {e}")),
        Ok(line) => match parse_request(line.trim_end()) {
            Err(e) => Response::Error(format!("bad request: {e}")),
            Ok(request) => handle_request(request, shared),
        },
    };
    let _ = writer.write_all(format!("{}\n", render_response(&response)).as_bytes());
    let _ = writer.flush();
}

fn handle_request(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Ping => Response::Ok,
        Request::Submit(spec) => {
            let mut queue = shared.queue.lock().expect("job queue poisoned");
            match queue.submit(spec) {
                Ok(job) => {
                    // The admission must be durable before the client
                    // learns the id: an unjournaled job would silently
                    // vanish on resume, which is worse than a refusal.
                    if let Some(journal) = &shared.journal {
                        let spec = queue.job(job).expect("just admitted").spec.clone();
                        if let Err(e) = journal.append(&JournalEvent::Submitted { job, spec }) {
                            queue.fail_job(job, format!("not journaled: {e}"));
                            shared
                                .log
                                .event("journal-error", Some(job), &[("error", e.clone())]);
                            return Response::Error(format!(
                                "job was not admitted; the journal is unwritable: {e}"
                            ));
                        }
                    }
                    shared.log.event(
                        "job-queued",
                        Some(job),
                        &[("pending", queue.snapshot().len().to_string())],
                    );
                    Response::Submitted { job }
                }
                Err(e) => Response::Error(e),
            }
        }
        Request::Status { job } => {
            let queue = shared.queue.lock().expect("job queue poisoned");
            let draining = queue.draining();
            let jobs = match job {
                None => queue.snapshot(),
                Some(id) => match queue.job(id) {
                    Some(job) => vec![job.status()],
                    None => return Response::Error(format!("no job {id}")),
                },
            };
            Response::Status { draining, jobs }
        }
        Request::Shutdown => {
            let mut queue = shared.queue.lock().expect("job queue poisoned");
            queue.drain();
            shared.log.event("drain", None, &[]);
            Response::Ok
        }
    }
}

fn scheduler_loop(shared: &Arc<Shared>, stop: &Arc<AtomicBool>) {
    loop {
        // An externally set stop flag (a dropped daemon) wins over queued
        // work; a clean shutdown drains the queue first.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let next = {
            let mut queue = shared.queue.lock().expect("job queue poisoned");
            if queue.is_drained() {
                break;
            }
            queue.take_next()
        };
        match next {
            None => {
                thread::sleep(POLL_INTERVAL);
            }
            Some(job_id) => {
                let result = supervisor::run_job(
                    &shared.cfg,
                    &shared.workdir,
                    shared.cfg.state_dir.as_deref(),
                    &shared.queue,
                    &shared.log,
                    shared.journal.as_ref(),
                    job_id,
                );
                // Journal the settlement before the queue flips the state:
                // a crash in between re-runs the job, never forgets it.
                let settled = match &result {
                    Ok(()) => JournalEvent::JobCompleted { job: job_id },
                    Err(reason) => JournalEvent::JobFailed {
                        job: job_id,
                        reason: reason.clone(),
                    },
                };
                if let Some(journal) = &shared.journal {
                    if let Err(e) = journal.append(&settled) {
                        shared
                            .log
                            .event("journal-error", Some(job_id), &[("error", e)]);
                    }
                }
                shared
                    .queue
                    .lock()
                    .expect("job queue poisoned")
                    .finish_active(result);
            }
        }
    }
    shared.log.event("daemon-exit", None, &[]);
    let _ = std::fs::remove_dir_all(&shared.workdir);
    stop.store(true, Ordering::SeqCst);
}
