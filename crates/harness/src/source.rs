//! First-class scenario supply: where a sweep's workload comes from.
//!
//! The engine used to know exactly one way to name a workload — "a seed
//! range, generated on the fly".  [`ScenarioSource`] makes the supply an
//! API object in its own right (the FunTAL "languages as interfaces"
//! discipline applied to the *populations* we push across the boundaries):
//!
//! * [`SeedRange`] — the classic half-open range, generated on the fly;
//! * [`Shard`] — a deterministic k-of-n partition of a range, so one sweep
//!   composes across processes (per-shard reports merge into the digests
//!   of the unsharded sweep);
//! * [`Corpus`] — a persisted, replayable scenario set with its generation
//!   profile pinned, saved and loaded through a hand-rolled line format
//!   (the workspace deliberately vendors no serde).
//!
//! Generation is deterministic in `(case, seed, profile)`, so a corpus
//! needs to persist only those coordinates to reproduce a sweep — and its
//! digest — bit for bit.

use semint_core::case::{CaseStudy, ConstructorWeights, GenProfile};
use semint_core::Fuel;
use std::path::Path;

/// A supplier of scenario seeds for each case study in a sweep.
///
/// Implementations must be deterministic: the same source must hand the
/// same ordered seed list to the same case on every call, on every
/// process, for sweep digests to be reproducible.
pub trait ScenarioSource {
    /// The ordered seeds this source supplies for the named case study.
    fn seeds(&self, case: &str) -> Vec<u64>;

    /// The generation profile this source pins, if any.  A [`Corpus`]
    /// replays the profile it was saved with, overriding the sweep's
    /// configured profile so a reloaded corpus reproduces the identical
    /// digest no matter how the surrounding sweep is configured.
    fn pinned_profile(&self) -> Option<GenProfile> {
        None
    }

    /// Total scenario count across the given case names (used for the
    /// engine's sweep-size guard and by progress output).
    fn total(&self, cases: &[&str]) -> u64 {
        cases.iter().map(|c| self.seeds(c).len() as u64).sum()
    }

    /// A short human-readable description for CLI output.
    fn describe(&self) -> String;
}

/// The classic workload: a half-open seed range, identical for every case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRange {
    start: u64,
    end: u64,
}

impl SeedRange {
    /// A validated half-open range `start..end` (must be non-empty and not
    /// reversed).
    pub fn new(start: u64, end: u64) -> Result<SeedRange, String> {
        if end < start {
            return Err(format!(
                "seed range {start}..{end} is reversed: the end is smaller than the start"
            ));
        }
        if end == start {
            return Err(format!("seed range {start}..{end} is empty"));
        }
        Ok(SeedRange { start, end })
    }

    /// First seed (inclusive).
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Last seed (exclusive).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of seeds in the range.
    pub fn count(&self) -> u64 {
        self.end - self.start
    }

    /// The `A..B` spec string the CLI's `--seeds` flag accepts — the round
    /// trip `SeedRange::new` ∘ parse ∘ `spec` is the identity, which is how
    /// `semint serve` hands a job's range to its shard workers.
    pub fn spec(&self) -> String {
        format!("{}..{}", self.start, self.end)
    }
}

impl ScenarioSource for SeedRange {
    fn seeds(&self, _case: &str) -> Vec<u64> {
        (self.start..self.end).collect()
    }

    fn total(&self, cases: &[&str]) -> u64 {
        self.count() * cases.len() as u64
    }

    fn describe(&self) -> String {
        format!("seeds {}..{}", self.start, self.end)
    }
}

/// A deterministic k-of-n partition of a seed range: shard `index` takes
/// every seed whose offset into the range is ≡ `index` (mod `of`).
///
/// The `of` shards of a range are pairwise disjoint and jointly cover it,
/// and every aggregate in a [`semint_core::stats::CaseReport`] is
/// additive — so merging the per-shard reports (see
/// [`semint_core::stats::SweepReport::merge`]) reproduces the unsharded
/// sweep's digests exactly.  That makes `--shard 0/2` + `--shard 1/2` in
/// two processes equivalent to one unsharded sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    range: SeedRange,
    index: u64,
    of: u64,
}

impl Shard {
    /// Shard `index` of `of` over `range`; `index` must be below `of`.
    pub fn new(range: SeedRange, index: u64, of: u64) -> Result<Shard, String> {
        if of == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= of {
            return Err(format!(
                "shard index {index} is out of range for {of} shards (use 0..{of})"
            ));
        }
        Ok(Shard { range, index, of })
    }

    /// This shard's index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Total number of shards in the partition.
    pub fn of(&self) -> u64 {
        self.of
    }

    /// The `K/N` spec string the CLI's `--shard` flag accepts.  Because the
    /// partition is a pure function of `(range, index, of)`, re-issuing this
    /// spec to a fresh process reproduces the dead worker's seed slice
    /// exactly — the property `semint serve`'s crash recovery rests on.
    pub fn spec(&self) -> String {
        format!("{}/{}", self.index, self.of)
    }

    /// Number of seeds in this shard's slice.
    pub fn seed_count(&self) -> u64 {
        let total = self.range.count();
        let whole = total / self.of;
        let rem = total % self.of;
        whole + u64::from(self.index < rem)
    }
}

impl ScenarioSource for Shard {
    fn seeds(&self, _case: &str) -> Vec<u64> {
        (self.range.start..self.range.end)
            .filter(|seed| (seed - self.range.start) % self.of == self.index)
            .collect()
    }

    fn describe(&self) -> String {
        format!(
            "shard {}/{} of seeds {}..{}",
            self.index, self.of, self.range.start, self.range.end
        )
    }
}

/// One persisted scenario coordinate: deterministic generation means
/// `(case, seed)` plus the corpus's pinned profile reproduces the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The case study the scenario belongs to.
    pub case: String,
    /// The generation seed.
    pub seed: u64,
}

/// A persisted, replayable scenario set with its generation profile pinned.
///
/// The on-disk format is a hand-rolled, line-oriented text format (the
/// workspace vendors no serde): a version header, one `profile` line
/// carrying every knob, then one `scenario⟨TAB⟩case⟨TAB⟩seed` line per
/// entry.  [`Corpus::from_text`] validates the profile knobs on load, so a
/// hand-edited corpus with (say) a 250% boundary bias is rejected with a
/// friendly error instead of silently clamped.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    profile: GenProfile,
    entries: Vec<CorpusEntry>,
}

/// The header line identifying the corpus format.
const CORPUS_HEADER: &str = "# semint corpus v1";

impl Corpus {
    /// An empty corpus pinning `profile`.
    pub fn new(profile: GenProfile) -> Result<Corpus, String> {
        profile.validate()?;
        Ok(Corpus {
            profile,
            entries: Vec::new(),
        })
    }

    /// Records the exact scenario set `source` supplies for `cases` under
    /// `profile` — the corpus a sweep over that source would execute.
    pub fn record<C: CaseStudy>(
        cases: &[C],
        source: &dyn ScenarioSource,
        profile: GenProfile,
    ) -> Result<Corpus, String> {
        let mut corpus = Corpus::new(source.pinned_profile().unwrap_or(profile))?;
        for case in cases {
            for seed in source.seeds(case.name()) {
                corpus.entries.push(CorpusEntry {
                    case: case.name().to_string(),
                    seed,
                });
            }
        }
        Ok(corpus)
    }

    /// The pinned generation profile.
    pub fn profile(&self) -> GenProfile {
        self.profile
    }

    /// The persisted entries, in sweep order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of persisted scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the corpus holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the corpus to the line format documented on the type.
    pub fn to_text(&self) -> String {
        let fuel = match self.profile.fuel.remaining() {
            Some(steps) => steps.to_string(),
            None => "unlimited".into(),
        };
        let mut out = format!(
            "{CORPUS_HEADER}\nprofile\tname={}\ttype-depth={}\tdepth={}\tboundary-bias={}\t\
             weights={},{},{}\tfuel={}\n",
            self.profile.name,
            self.profile.type_depth,
            self.profile.max_depth,
            self.profile.boundary_bias,
            self.profile.weights.leaf,
            self.profile.weights.branch,
            self.profile.weights.wrap,
            fuel,
        );
        for entry in &self.entries {
            out.push_str(&format!("scenario\t{}\t{}\n", entry.case, entry.seed));
        }
        out
    }

    /// Parses the format produced by [`Corpus::to_text`], validating every
    /// profile knob.
    pub fn from_text(text: &str) -> Result<Corpus, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("corpus file is empty")?;
        if header.trim_end() != CORPUS_HEADER {
            return Err(format!(
                "not a semint corpus: expected header `{CORPUS_HEADER}`, found `{header}`"
            ));
        }
        let mut profile: Option<GenProfile> = None;
        let mut entries = Vec::new();
        for (lineno, line) in lines {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('\t');
            let key = fields.next().unwrap_or_default();
            match key {
                "profile" => profile = Some(parse_profile_line(fields, lineno + 1)?),
                "scenario" => {
                    let case = fields
                        .next()
                        .ok_or_else(|| format!("line {}: scenario needs a case", lineno + 1))?;
                    let seed = fields
                        .next()
                        .ok_or_else(|| format!("line {}: scenario needs a seed", lineno + 1))?
                        .parse::<u64>()
                        .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?;
                    entries.push(CorpusEntry {
                        case: case.to_string(),
                        seed,
                    });
                }
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        let profile = profile.ok_or("corpus has no profile line")?;
        profile
            .validate()
            .map_err(|e| format!("corpus profile invalid: {e}"))?;
        Ok(Corpus { profile, entries })
    }

    /// Writes the corpus to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        std::fs::write(path, self.to_text())
            .map_err(|e| format!("saving corpus {}: {e}", path.display()))
    }

    /// Reads a corpus from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Corpus, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading corpus {}: {e}", path.display()))?;
        Corpus::from_text(&text).map_err(|e| format!("corpus {}: {e}", path.display()))
    }
}

/// Parses the tab-separated `key=value` fields of a `profile` line.
fn parse_profile_line<'a>(
    fields: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<GenProfile, String> {
    let mut profile = GenProfile::standard();
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: profile field `{field}` is not key=value"))?;
        let parse_num = |v: &str| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|e| format!("line {lineno}: {key}: {e}"))
        };
        match key {
            // Preset names round-trip; anything else was already a
            // customized profile, whose knobs follow.
            "name" => {
                if let Some(preset) = GenProfile::by_name(value) {
                    profile = preset;
                } else {
                    profile.name = "custom";
                }
            }
            "type-depth" => profile.type_depth = parse_num(value)? as usize,
            "depth" => profile.max_depth = parse_num(value)? as usize,
            "boundary-bias" => profile.boundary_bias = parse_num(value)? as u32,
            "weights" => {
                let mut parts = value.split(',');
                let mut next = |what: &str| -> Result<u32, String> {
                    parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: weights missing {what}"))?
                        .parse::<u32>()
                        .map_err(|e| format!("line {lineno}: weights {what}: {e}"))
                };
                profile.weights = ConstructorWeights {
                    leaf: next("leaf")?,
                    branch: next("branch")?,
                    wrap: next("wrap")?,
                };
            }
            "fuel" => {
                profile.fuel = if value == "unlimited" {
                    Fuel::unlimited()
                } else {
                    Fuel::steps(parse_num(value)?)
                };
            }
            other => return Err(format!("line {lineno}: unknown profile knob {other:?}")),
        }
    }
    Ok(profile)
}

impl ScenarioSource for Corpus {
    fn seeds(&self, case: &str) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.case == case)
            .map(|e| e.seed)
            .collect()
    }

    fn pinned_profile(&self) -> Option<GenProfile> {
        Some(self.profile)
    }

    fn describe(&self) -> String {
        format!(
            "corpus of {} scenarios (profile {})",
            self.entries.len(),
            self.profile.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_ranges_validate() {
        assert!(SeedRange::new(10, 5).unwrap_err().contains("reversed"));
        assert!(SeedRange::new(7, 7).unwrap_err().contains("empty"));
        let range = SeedRange::new(3, 9).unwrap();
        assert_eq!(range.count(), 6);
        assert_eq!(range.seeds("anything"), vec![3, 4, 5, 6, 7, 8]);
        assert_eq!(range.total(&["a", "b", "c"]), 18);
    }

    #[test]
    fn shards_partition_exactly() {
        let range = SeedRange::new(5, 25).unwrap();
        let of = 3;
        let mut combined: Vec<u64> = Vec::new();
        for index in 0..of {
            let shard = Shard::new(range, index, of).unwrap();
            let seeds = shard.seeds("any");
            // Disjointness: nothing this shard yields was yielded before.
            for seed in &seeds {
                assert!(!combined.contains(seed), "seed {seed} in two shards");
            }
            combined.extend(seeds);
        }
        combined.sort_unstable();
        assert_eq!(combined, range.seeds("any"), "shards must cover the range");
    }

    #[test]
    fn spec_strings_round_trip_and_seed_counts_match() {
        let range = SeedRange::new(3, 20).unwrap();
        assert_eq!(range.spec(), "3..20");
        let spec = range.spec();
        let (a, b) = spec.split_once("..").unwrap();
        let reparsed = SeedRange::new(a.parse().unwrap(), b.parse().unwrap()).unwrap();
        assert_eq!(reparsed, range);
        for of in 1..6u64 {
            for index in 0..of {
                let shard = Shard::new(range, index, of).unwrap();
                assert_eq!(shard.spec(), format!("{index}/{of}"));
                assert_eq!(
                    shard.seed_count(),
                    shard.seeds("any").len() as u64,
                    "closed-form count agrees with the enumerated slice"
                );
            }
        }
    }

    #[test]
    fn shard_validation_rejects_bad_indices() {
        let range = SeedRange::new(0, 10).unwrap();
        assert!(Shard::new(range, 0, 0).unwrap_err().contains("at least 1"));
        assert!(Shard::new(range, 2, 2)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn corpus_round_trips_through_its_text_format() {
        let mut profile = GenProfile::deep();
        profile.boundary_bias = 60;
        profile.name = "custom";
        let mut corpus = Corpus::new(profile).unwrap();
        corpus.entries.push(CorpusEntry {
            case: "sharedmem".into(),
            seed: 17,
        });
        corpus.entries.push(CorpusEntry {
            case: "memgc".into(),
            seed: 3,
        });
        let parsed = Corpus::from_text(&corpus.to_text()).unwrap();
        assert_eq!(parsed, corpus);
        assert_eq!(parsed.pinned_profile().unwrap().boundary_bias, 60);
        assert_eq!(parsed.seeds("sharedmem"), vec![17]);
        assert_eq!(parsed.seeds("affine"), Vec::<u64>::new());
    }

    #[test]
    fn corpus_load_rejects_garbage_and_invalid_knobs() {
        assert!(Corpus::from_text("not a corpus")
            .unwrap_err()
            .contains("header"));
        let bad_bias = format!("{CORPUS_HEADER}\nprofile\tboundary-bias=250\n");
        assert!(Corpus::from_text(&bad_bias).unwrap_err().contains("0-100"));
        let no_profile = format!("{CORPUS_HEADER}\nscenario\taffine\t4\n");
        assert!(Corpus::from_text(&no_profile)
            .unwrap_err()
            .contains("no profile"));
        let bad_key = format!("{CORPUS_HEADER}\nprofile\tname=smoke\nnonsense\t1\n");
        assert!(Corpus::from_text(&bad_key)
            .unwrap_err()
            .contains("unknown key"));
    }

    #[test]
    fn unlimited_fuel_round_trips() {
        let mut profile = GenProfile::smoke();
        profile.fuel = Fuel::unlimited();
        let corpus = Corpus::new(profile).unwrap();
        let parsed = Corpus::from_text(&corpus.to_text()).unwrap();
        assert_eq!(parsed.profile().fuel, Fuel::unlimited());
    }
}
