//! The parallel batch runner.
//!
//! A sweep groups each case study's seeds into contiguous **batches** of
//! [`SweepConfig::batch`] scenarios (default 1), turns each batch into one
//! task, and drains the tasks through a **work-stealing pool**: every worker
//! owns a deque, pops from its own front, and steals from the backs of the
//! others when it runs dry.  Within a task, every scenario is generated,
//! typechecked, compiled and model-checked individually — exactly as in a
//! per-scenario sweep — and then the whole batch of compiled artifacts is
//! executed through [`CaseStudy::execute_batch`], which the case studies
//! implement with **one** reused machine (reset in place between programs)
//! so machine setup is amortised across the batch.
//!
//! Neither scheduling nor batching influences results: each task's
//! generator is seeded purely by its sweep seed, batches preserve per-seed
//! order, batched machines are reset to an observationally fresh state, and
//! records are re-ordered by task index before aggregation — so a sweep is
//! deterministic (digest-identical) for any `--jobs` *and* any `--batch`
//! value, which the integration suite asserts.

use crate::shrink::shrink_failure;
use crate::source::ScenarioSource;
use crate::trace::SweepObserver;
use semint_core::case::{CaseStudy, CheckFailure, GenProfile, Scenario};
use semint_core::stats::{
    CaseReport, FailStage, FailureRecord, ScenarioRecord, StageTimings, SweepReport,
};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for one sweep.  *What* to sweep is no longer in here — the
/// workload is supplied by a [`ScenarioSource`] (a seed range, a shard of
/// one, or a persisted corpus); this struct carries only the *how*.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Worker threads; clamped to the task count and to at least 1.
    pub jobs: usize,
    /// The generation profile (superseded by the source's pinned profile,
    /// if it has one — corpora replay the profile they were saved with).
    pub profile: GenProfile,
    /// Whether to run the realizability-model check on every scenario (the
    /// expensive stage; `run`-only sweeps skip it).
    pub model_check: bool,
    /// Whether to collect per-stage wall-clock totals (`semint sweep
    /// --time`, `semint bench`, `semint run`, and any `--trace`d sweep).
    /// Wall-clock is one of two sweep-time signals: the deterministic
    /// [`semint_core::VmCounters`] (instructions by opcode class,
    /// allocations, high-water marks) are collected unconditionally — they
    /// are digest-grade facts, cheap enough to never switch off.  Timing
    /// changes *measurement only*: every scenario is typechecked once and
    /// compiled once whether or not the stopwatch is on — the compiled
    /// artifact is threaded from the compile stage through model checking
    /// into execution — so timed and untimed sweeps of the same seeds agree
    /// on digests, counters, and glue-cache hit/miss figures alike.
    pub time: bool,
    /// How many same-case compiled artifacts are executed per reused
    /// machine (`--batch N`; must be at least 1).  `1` executes every
    /// scenario on its own machine; larger batches drive contiguous seed
    /// groups through one machine via [`CaseStudy::execute_batch`].
    /// Batching changes *amortisation only*: per-seed report order and all
    /// digests are identical for every batch size.
    pub batch: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            jobs: 4,
            profile: GenProfile::standard(),
            model_check: true,
            time: false,
            batch: 1,
        }
    }
}

impl SweepConfig {
    /// The configuration a sweep over `source` actually runs with: the
    /// source's pinned profile wins over the configured one.
    fn resolved_for(&self, source: &(impl ScenarioSource + ?Sized)) -> SweepConfig {
        match source.pinned_profile() {
            Some(profile) => SweepConfig { profile, ..*self },
            None => *self,
        }
    }
}

/// The largest seed range a single sweep accepts.  Tasks are materialised
/// up front (so the pool can deal them round-robin), and this bound keeps
/// that allocation trivially small while still far exceeding any practical
/// sweep.
pub const MAX_SEEDS_PER_SWEEP: u64 = 10_000_000;

/// Maps `f` over `items` on a work-stealing pool of `jobs` threads,
/// returning results in input order.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    // Tasks are dealt round-robin so every worker starts with a share;
    // stealing rebalances whatever unevenness the workloads create.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for idx in 0..n {
        queues[idx % jobs]
            .lock()
            .expect("queue poisoned")
            .push_back(idx);
    }

    let pop_task = |worker: usize| -> Option<usize> {
        // Own queue first (front), then steal from the others (back).
        if let Some(idx) = queues[worker].lock().expect("queue poisoned").pop_front() {
            return Some(idx);
        }
        for offset in 1..queues.len() {
            let victim = (worker + offset) % queues.len();
            if let Some(idx) = queues[victim].lock().expect("queue poisoned").pop_back() {
                return Some(idx);
            }
        }
        None
    };

    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let f = &f;
                let pop_task = &pop_task;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while let Some(idx) = pop_task(worker) {
                        out.push((idx, f(&items[idx])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(idx, _)| *idx);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Runs `f`, adding its wall-clock to `slot` when `enabled`.
fn staged<R>(enabled: bool, slot: &mut u64, f: impl FnOnce() -> R) -> R {
    if enabled {
        let started = Instant::now();
        let out = f();
        *slot += started.elapsed().as_nanos() as u64;
        out
    } else {
        f()
    }
}

/// The product of the pre-execution pipeline stages for one scenario:
/// everything the engine needs to finish the record once a machine report
/// is available (the execution itself is left to the caller, so a batch of
/// prepared scenarios can run through one reused machine).
struct Prepared<C: CaseStudy> {
    /// The record so far; `failure` is set when a pre-run stage rejected
    /// the scenario, in which case `ready` is `None`.
    record: ScenarioRecord,
    /// Per-stage wall-clock so far (`generate_ns` is stamped in by the
    /// caller, which owns the generation).
    timings: StageTimings,
    /// The compiled artifact and the deferred model-check verdict, when
    /// every pre-run stage passed.
    ready: Option<(C::Compiled, Result<(), CheckFailure>)>,
}

/// Stamps the collected timings into the record when the sweep is timed.
fn seal(mut record: ScenarioRecord, timings: StageTimings, time: bool) -> ScenarioRecord {
    if time {
        record.timings = Some(timings);
    }
    record
}

/// Runs the pre-execution pipeline stages on a generated scenario: the one
/// typecheck, the one compile, and the model check *borrowing* the artifact
/// (execution consumes it later, so nothing is cloned on the hot path).
///
/// The model-check verdict is deferred until after the run: an unsafe run
/// outcome still takes precedence over a model-check rejection, exactly as
/// when the stages ran in pipeline order.
fn prepare_generated<C: CaseStudy>(
    case: &C,
    scenario: &Scenario<C::Program, C::Ty>,
    cfg: &SweepConfig,
) -> Prepared<C> {
    let seed = scenario.seed;
    let rendered = scenario.program.to_string();
    let mut timings = StageTimings::default();
    let mut record = ScenarioRecord {
        seed,
        ty: scenario.ty.to_string(),
        program_chars: rendered.chars().count(),
        boundaries: case.boundary_count(&scenario.program),
        stats: None,
        failure: None,
        timings: None,
    };
    let plain_failure = |stage: FailStage, reason: String| FailureRecord {
        seed,
        stage,
        reason,
        witness: rendered.clone(),
        shrunk: rendered.clone(),
        shrink_steps: 0,
    };

    // 1. The generator's type claim must re-check — the only typecheck the
    // scenario will ever get.
    let checked = staged(cfg.time, &mut timings.typecheck_ns, || {
        case.typecheck(&scenario.program)
    });
    match checked {
        Ok(checked) if checked == scenario.ty => {}
        Ok(checked) => {
            record.failure = Some(plain_failure(
                FailStage::Typecheck,
                format!("claimed {}, checked {}", scenario.ty, checked),
            ));
            return Prepared {
                record,
                timings,
                ready: None,
            };
        }
        Err(err) => {
            record.failure = Some(plain_failure(FailStage::Typecheck, err));
            return Prepared {
                record,
                timings,
                ready: None,
            };
        }
    }

    // 2. Compile exactly once; every downstream stage consumes this one
    // artifact (shrink re-checks, which examine *different*, smaller
    // programs, compile their own — also exactly once per candidate).
    let compiled = staged(cfg.time, &mut timings.compile_ns, || {
        case.compile(&scenario.program)
    });
    let compiled = match compiled {
        Ok(compiled) => compiled,
        Err(err) => {
            record.failure = Some(plain_failure(FailStage::Compile, err));
            return Prepared {
                record,
                timings,
                ready: None,
            };
        }
    };

    // 3. Model check borrows the artifact; the verdict is held until after
    // execution.
    let model_verdict = if cfg.model_check {
        staged(cfg.time, &mut timings.model_check_ns, || {
            case.model_check_compiled(&scenario.program, &scenario.ty, &compiled)
        })
    } else {
        Ok(())
    };

    Prepared {
        record,
        timings,
        ready: Some((compiled, model_verdict)),
    }
}

/// Folds a machine report into a prepared scenario's record: run-stage
/// statistics, the unsafe-outcome check, and the deferred model-check
/// verdict, shrinking any counterexample.
fn finish_executed<C: CaseStudy>(
    case: &C,
    scenario: &Scenario<C::Program, C::Ty>,
    mut record: ScenarioRecord,
    timings: StageTimings,
    model_verdict: Result<(), CheckFailure>,
    report: C::Report,
    cfg: &SweepConfig,
) -> ScenarioRecord {
    let mut stats = case.stats(&report);
    // Boundaries are erased by compilation (glue is ordinary target code),
    // so the machines cannot count them; the engine stamps the scenario's
    // static boundary count, which is just as deterministic.
    stats.counters.boundary_crossings = record.boundaries as u64;
    record.stats = Some(stats);
    if !stats.outcome.is_safe() {
        // Shrink candidates are *different* programs, so each takes its own
        // trip through the artifact pipeline: typecheck once, compile once,
        // execute that artifact — never the compile-their-own `run`
        // convenience, so the compile-once invariant holds here too.
        let (shrunk, steps) = shrink_failure(case, &scenario.program, |p| {
            case.typecheck(p).is_ok()
                && case
                    .compile(p)
                    .map(|compiled| {
                        !case
                            .stats(&case.execute(compiled, cfg.profile.fuel))
                            .outcome
                            .is_safe()
                    })
                    .unwrap_or(false)
        });
        record.failure = Some(FailureRecord {
            seed: scenario.seed,
            stage: FailStage::Run,
            reason: format!("unsafe outcome {}", stats.outcome),
            witness: scenario.program.to_string(),
            shrunk: shrunk.to_string(),
            shrink_steps: steps,
        });
        return seal(record, timings, cfg.time);
    }

    // The deferred model-check verdict, shrinking any counterexample with
    // the same one-compile-per-candidate discipline (the verdict is taken
    // on the borrowed artifact).  A candidate that typechecks but fails to
    // compile still counts as failing — the semantics the compile-their-own
    // `model_check` default always had (a compile error *is* a refutation
    // of the model claim), preserved so shrunk witnesses are unchanged.
    if let Err(check) = model_verdict {
        let (shrunk, steps) = shrink_failure(case, &scenario.program, |p| {
            case.typecheck(p)
                .map(|ty| match case.compile(p) {
                    Ok(compiled) => case.model_check_compiled(p, &ty, &compiled).is_err(),
                    Err(_) => true,
                })
                .unwrap_or(false)
        });
        record.failure = Some(FailureRecord {
            seed: scenario.seed,
            stage: FailStage::ModelCheck,
            reason: check.to_string(),
            witness: scenario.program.to_string(),
            shrunk: shrunk.to_string(),
            shrink_steps: steps,
        });
    }
    seal(record, timings, cfg.time)
}

/// Runs the full pipeline for one seed of one case study.
pub fn run_scenario<C: CaseStudy>(case: &C, seed: u64, cfg: &SweepConfig) -> ScenarioRecord {
    let mut generate_ns = 0;
    let scenario = staged(cfg.time, &mut generate_ns, || {
        case.generate(seed, &cfg.profile)
    });
    let mut record = run_generated(case, &scenario, cfg);
    if let Some(timings) = &mut record.timings {
        timings.generate_ns = generate_ns;
    }
    record
}

/// Runs the full pipeline on an already-generated scenario (callers that
/// want to display the program first generate once and reuse it here).
///
/// The pipeline is artifact-threaded: the scenario is typechecked **once**
/// and compiled **once**, and the resulting [`CaseStudy::Compiled`] artifact
/// is borrowed by the model-check stage and then consumed by execution —
/// no stage recompiles, no stage clones.  Only shrink re-checks (which
/// examine different, smaller programs) compile again, once per candidate.
pub fn run_generated<C: CaseStudy>(
    case: &C,
    scenario: &Scenario<C::Program, C::Ty>,
    cfg: &SweepConfig,
) -> ScenarioRecord {
    let mut prepared = prepare_generated(case, scenario, cfg);
    match prepared.ready.take() {
        None => seal(prepared.record, prepared.timings, cfg.time),
        Some((compiled, verdict)) => {
            let mut timings = prepared.timings;
            let report = staged(cfg.time, &mut timings.run_ns, || {
                case.execute(compiled, cfg.profile.fuel)
            });
            finish_executed(
                case,
                scenario,
                prepared.record,
                timings,
                verdict,
                report,
                cfg,
            )
        }
    }
}

/// Runs the full pipeline for a contiguous group of seeds of one case
/// study, executing the group's compiled artifacts as **one batch** through
/// [`CaseStudy::execute_batch`] (one reused machine in the case-study
/// overrides).
///
/// Every pre-run stage — generate, typecheck, compile, the borrowed model
/// check — runs per scenario exactly as in [`run_scenario`], and records
/// come back in seed order with per-scenario statistics split back out, so
/// the result is digest-identical to running the seeds one at a time; only
/// machine setup is amortised.  The batch's run wall-clock cannot be
/// observed per scenario (the whole batch executes in one call), so when
/// the sweep is timed it is apportioned by the machine steps each scenario
/// consumed — a scenario that dominates the batch is charged its share of
/// the wall-clock, not an even split — with the exact-sum share split
/// keeping the per-case run-stage total precise.
pub fn run_batch<C: CaseStudy>(case: &C, seeds: &[u64], cfg: &SweepConfig) -> Vec<ScenarioRecord> {
    let mut scenarios = Vec::with_capacity(seeds.len());
    let mut prepared: Vec<Prepared<C>> = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut generate_ns = 0;
        let scenario = staged(cfg.time, &mut generate_ns, || {
            case.generate(seed, &cfg.profile)
        });
        let mut p = prepare_generated(case, &scenario, cfg);
        p.timings.generate_ns = generate_ns;
        scenarios.push(scenario);
        prepared.push(p);
    }

    // Collect the executable artifacts in seed order and run them as one
    // batch; scenarios that failed a pre-run stage simply take no part.
    let mut ready_indices = Vec::with_capacity(prepared.len());
    let mut verdicts = Vec::with_capacity(prepared.len());
    let mut artifacts = Vec::with_capacity(prepared.len());
    for (idx, p) in prepared.iter_mut().enumerate() {
        if let Some((compiled, verdict)) = p.ready.take() {
            ready_indices.push(idx);
            verdicts.push(verdict);
            artifacts.push(compiled);
        }
    }
    let mut batch_run_ns = 0;
    let reports = staged(cfg.time, &mut batch_run_ns, || {
        case.execute_batch(artifacts, cfg.profile.fuel)
    });
    assert_eq!(
        reports.len(),
        ready_indices.len(),
        "execute_batch must return one report per artifact"
    );

    // Charge each executed scenario for the batch wall-clock in proportion
    // to the machine steps it consumed (the semantic clock is the best
    // deterministic proxy for where the time went); the shares sum back to
    // the measured batch wall-clock exactly.
    let shares: Vec<u64> = if cfg.time {
        let steps: Vec<u64> = reports.iter().map(|r| case.stats(r).steps).collect();
        weighted_shares(batch_run_ns, &steps)
    } else {
        vec![0; reports.len()]
    };

    let mut executed = ready_indices
        .into_iter()
        .zip(verdicts.into_iter().zip(reports.into_iter().zip(shares)))
        .peekable();
    prepared
        .into_iter()
        .zip(&scenarios)
        .enumerate()
        .map(|(idx, (p, scenario))| match executed.peek() {
            Some((ready_idx, _)) if *ready_idx == idx => {
                let (_, (verdict, (report, run_ns))) = executed.next().expect("peeked entry");
                let mut timings = p.timings;
                timings.run_ns = run_ns;
                finish_executed(case, scenario, p.record, timings, verdict, report, cfg)
            }
            _ => seal(p.record, p.timings, cfg.time),
        })
        .collect()
}

/// Splits `total_ns` across scenarios proportionally to `weights` (machine
/// steps consumed), handing the rounding remainder to the earliest
/// scenarios one nanosecond at a time so the shares always sum back to
/// `total_ns` exactly.  Falls back to an even split when every weight is
/// zero (e.g. a batch of empty programs).
fn weighted_shares(total_ns: u64, weights: &[u64]) -> Vec<u64> {
    let n = weights.len() as u64;
    if n == 0 {
        return Vec::new();
    }
    let total_weight: u64 = weights.iter().sum();
    if total_weight == 0 {
        return (0..n)
            .map(|i| total_ns / n + u64::from(i < total_ns % n))
            .collect();
    }
    let mut shares: Vec<u64> = weights
        .iter()
        .map(|&w| ((total_ns as u128 * w as u128) / total_weight as u128) as u64)
        .collect();
    let mut remainder = total_ns - shares.iter().sum::<u64>();
    for share in shares.iter_mut() {
        if remainder == 0 {
            break;
        }
        *share += 1;
        remainder -= 1;
    }
    shares
}

fn check_size(source: &(impl ScenarioSource + ?Sized), case_names: &[&str]) {
    let total = source.total(case_names);
    assert!(
        total <= MAX_SEEDS_PER_SWEEP,
        "{} supplies {total} scenarios, exceeding MAX_SEEDS_PER_SWEEP ({MAX_SEEDS_PER_SWEEP})",
        source.describe(),
    );
}

/// Batch sizes are validated, never clamped — the same policy as
/// [`GenProfile::validate`]; the CLI turns `--batch 0` into a usage error
/// before a sweep configuration is ever built.
fn check_batch(cfg: &SweepConfig) {
    assert!(
        cfg.batch >= 1,
        "batch size must be at least 1 (a zero-scenario batch can run nothing)"
    );
}

/// Records the per-sweep glue-cache counters into `report`, as the
/// difference between two snapshots of the case's shared cache.
fn record_glue_stats<C: CaseStudy>(
    case: &C,
    before: Option<semint_core::GlueCacheStats>,
    report: &mut CaseReport,
) {
    if let (Some(before), Some(after)) = (before, case.glue_cache_stats()) {
        let delta = after.since(&before);
        report.glue_hits = delta.hits;
        report.glue_misses = delta.misses;
    }
}

/// Sweeps one case study over the scenarios a [`ScenarioSource`] supplies
/// for it, scheduling contiguous [`SweepConfig::batch`]-sized seed groups
/// as the pool's tasks.
pub fn sweep_case<C, S>(case: &C, source: &S, cfg: &SweepConfig) -> CaseReport
where
    C: CaseStudy + Sync,
    S: ScenarioSource + ?Sized,
{
    sweep_case_observed(case, source, cfg, None)
}

/// [`sweep_case`] with an optional [`SweepObserver`]: each worker reports
/// every finished scenario as it completes (trace events, progress ticks).
/// Observation is strictly one-way — the returned report is identical to an
/// unobserved sweep's, digests and counters alike.
pub fn sweep_case_observed<C, S>(
    case: &C,
    source: &S,
    cfg: &SweepConfig,
    observer: Option<&SweepObserver>,
) -> CaseReport
where
    C: CaseStudy + Sync,
    S: ScenarioSource + ?Sized,
{
    check_size(source, &[case.name()]);
    let cfg = cfg.resolved_for(source);
    check_batch(&cfg);
    let glue_before = case.glue_cache_stats();
    let seeds = source.seeds(case.name());
    let batches: Vec<&[u64]> = seeds.chunks(cfg.batch).collect();
    let records = parallel_map(&batches, cfg.jobs, |batch| {
        let records = run_batch(case, batch, &cfg);
        if let Some(observer) = observer {
            for record in &records {
                observer.scenario(case.name(), record, case.glue_cache_stats());
            }
        }
        records
    });
    let mut report = CaseReport::new(case.name());
    for record in records.iter().flatten() {
        report.absorb(record);
    }
    record_glue_stats(case, glue_before, &mut report);
    report
}

/// Sweeps several case studies through **one shared pool**: all
/// (case, batch) tasks are interleaved, so the three case studies genuinely
/// run in parallel rather than back to back.  Batches never mix case
/// studies — each groups contiguous seeds of one case, so its artifacts all
/// fit the one machine that executes them.
///
/// Every worker consults the same per-case [`semint_core::GlueCache`]
/// (conversion schemes share their cache across clones), so compound glue is
/// derived once per type pair per sweep; the per-case hit/miss deltas land in
/// [`CaseReport::glue_hits`] / [`CaseReport::glue_misses`].
pub fn sweep_all<C, S>(cases: &[C], source: &S, cfg: &SweepConfig) -> SweepReport
where
    C: CaseStudy + Sync,
    S: ScenarioSource + ?Sized,
{
    sweep_all_observed(cases, source, cfg, None)
}

/// [`sweep_all`] with an optional [`SweepObserver`] (see
/// [`sweep_case_observed`]); the observer sees the interleaved completion
/// order across all cases, the report is unchanged by observation.
pub fn sweep_all_observed<C, S>(
    cases: &[C],
    source: &S,
    cfg: &SweepConfig,
    observer: Option<&SweepObserver>,
) -> SweepReport
where
    C: CaseStudy + Sync,
    S: ScenarioSource + ?Sized,
{
    let case_names: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    check_size(source, &case_names);
    let cfg = cfg.resolved_for(source);
    check_batch(&cfg);
    let glue_before: Vec<_> = cases.iter().map(|case| case.glue_cache_stats()).collect();
    let per_case_seeds: Vec<Vec<u64>> =
        cases.iter().map(|case| source.seeds(case.name())).collect();
    let tasks: Vec<(usize, &[u64])> = per_case_seeds
        .iter()
        .enumerate()
        .flat_map(|(idx, seeds)| seeds.chunks(cfg.batch).map(move |batch| (idx, batch)))
        .collect();
    let records = parallel_map(&tasks, cfg.jobs, |&(idx, batch)| {
        let records = run_batch(&cases[idx], batch, &cfg);
        if let Some(observer) = observer {
            for record in &records {
                observer.scenario(cases[idx].name(), record, cases[idx].glue_cache_stats());
            }
        }
        (idx, records)
    });
    let mut reports: Vec<CaseReport> = cases
        .iter()
        .map(|case| CaseReport::new(case.name()))
        .collect();
    for (idx, batch_records) in &records {
        for record in batch_records {
            reports[*idx].absorb(record);
        }
    }
    for ((case, report), before) in cases.iter().zip(&mut reports).zip(glue_before) {
        record_glue_stats(case, before, report);
    }
    SweepReport { cases: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..250).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_runs_every_task_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..503).collect();
        let out = parallel_map(&items, 4, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 503);
        assert_eq!(counter.load(Ordering::SeqCst), 503);
    }

    #[test]
    fn parallel_map_handles_empty_and_oversized_jobs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        let one = vec![9u64];
        assert_eq!(parallel_map(&one, 64, |&x| x + 1), vec![10]);
    }

    #[test]
    fn run_batch_records_match_per_scenario_records() {
        let case = crate::cases::AnyCase::by_name("memgc", false).expect("known case");
        let cfg = SweepConfig {
            jobs: 1,
            ..SweepConfig::default()
        };
        let seeds: Vec<u64> = (0..12).collect();
        let batched = run_batch(&case, &seeds, &cfg);
        assert_eq!(batched.len(), seeds.len());
        for (record, &seed) in batched.iter().zip(&seeds) {
            let single = run_scenario(&case, seed, &cfg);
            assert_eq!(record.seed, single.seed, "per-seed order is preserved");
            assert_eq!(record.stats, single.stats, "seed {seed}");
            assert_eq!(record.boundaries, single.boundaries, "seed {seed}");
            assert_eq!(record.program_chars, single.program_chars, "seed {seed}");
            assert_eq!(
                record.failure.is_some(),
                single.failure.is_some(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn timed_batches_stamp_timings_into_every_record() {
        let case = crate::cases::AnyCase::by_name("sharedmem", false).expect("known case");
        let cfg = SweepConfig {
            jobs: 1,
            time: true,
            batch: 4,
            ..SweepConfig::default()
        };
        let seeds: Vec<u64> = (0..7).collect();
        let records = run_batch(&case, &seeds, &cfg);
        assert_eq!(records.len(), 7);
        assert!(records.iter().all(|r| r.timings.is_some()));
    }

    #[test]
    fn weighted_shares_sum_exactly_and_follow_the_weights() {
        let shares = weighted_shares(1_000_003, &[10, 0, 30, 60]);
        assert_eq!(shares.iter().sum::<u64>(), 1_000_003);
        assert!(
            shares[1] <= 1,
            "a zero-step scenario gets at most a rounding nanosecond"
        );
        assert!(shares[3] > shares[2] && shares[2] > shares[0]);
        // All-zero weights fall back to an even split that still sums back.
        let even = weighted_shares(10, &[0, 0, 0]);
        assert_eq!(even.iter().sum::<u64>(), 10);
        assert!(even.iter().all(|&s| s == 3 || s == 4));
        assert!(weighted_shares(42, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_sweeps_are_rejected() {
        let case = crate::cases::AnyCase::by_name("memgc", false).expect("known case");
        let source = crate::source::SeedRange::new(0, 4).expect("non-empty");
        let cfg = SweepConfig {
            batch: 0,
            ..SweepConfig::default()
        };
        let _ = sweep_case(&case, &source, &cfg);
    }
}
