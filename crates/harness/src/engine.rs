//! The parallel batch runner.
//!
//! A sweep turns a seed range into one task per (case study, seed) pair and
//! drains the tasks through a **work-stealing pool**: every worker owns a
//! deque, pops from its own front, and steals from the backs of the others
//! when it runs dry.  Scheduling never influences results — each task's
//! generator is seeded purely by its sweep seed, and records are re-ordered
//! by task index before aggregation — so a sweep is deterministic for any
//! `--jobs` value, which the integration suite asserts.

use crate::shrink::shrink_failure;
use crate::source::ScenarioSource;
use semint_core::case::{CaseStudy, GenProfile};
use semint_core::stats::{
    CaseReport, FailStage, FailureRecord, ScenarioRecord, StageTimings, SweepReport,
};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for one sweep.  *What* to sweep is no longer in here — the
/// workload is supplied by a [`ScenarioSource`] (a seed range, a shard of
/// one, or a persisted corpus); this struct carries only the *how*.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Worker threads; clamped to the task count and to at least 1.
    pub jobs: usize,
    /// The generation profile (superseded by the source's pinned profile,
    /// if it has one — corpora replay the profile they were saved with).
    pub profile: GenProfile,
    /// Whether to run the realizability-model check on every scenario (the
    /// expensive stage; `run`-only sweeps skip it).
    pub model_check: bool,
    /// Whether to collect per-stage wall-clock totals (`semint sweep
    /// --time`, `semint bench`, and `semint run`).  Timing changes
    /// *measurement only*: every scenario is typechecked once and compiled
    /// once whether or not the stopwatch is on — the compiled artifact is
    /// threaded from the compile stage through model checking into
    /// execution — so timed and untimed sweeps of the same seeds agree on
    /// digests and on glue-cache hit/miss figures alike.
    pub time: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            jobs: 4,
            profile: GenProfile::standard(),
            model_check: true,
            time: false,
        }
    }
}

impl SweepConfig {
    /// The configuration a sweep over `source` actually runs with: the
    /// source's pinned profile wins over the configured one.
    fn resolved_for(&self, source: &(impl ScenarioSource + ?Sized)) -> SweepConfig {
        match source.pinned_profile() {
            Some(profile) => SweepConfig { profile, ..*self },
            None => *self,
        }
    }
}

/// The largest seed range a single sweep accepts.  Tasks are materialised
/// up front (so the pool can deal them round-robin), and this bound keeps
/// that allocation trivially small while still far exceeding any practical
/// sweep.
pub const MAX_SEEDS_PER_SWEEP: u64 = 10_000_000;

/// Maps `f` over `items` on a work-stealing pool of `jobs` threads,
/// returning results in input order.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    // Tasks are dealt round-robin so every worker starts with a share;
    // stealing rebalances whatever unevenness the workloads create.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for idx in 0..n {
        queues[idx % jobs]
            .lock()
            .expect("queue poisoned")
            .push_back(idx);
    }

    let pop_task = |worker: usize| -> Option<usize> {
        // Own queue first (front), then steal from the others (back).
        if let Some(idx) = queues[worker].lock().expect("queue poisoned").pop_front() {
            return Some(idx);
        }
        for offset in 1..queues.len() {
            let victim = (worker + offset) % queues.len();
            if let Some(idx) = queues[victim].lock().expect("queue poisoned").pop_back() {
                return Some(idx);
            }
        }
        None
    };

    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let f = &f;
                let pop_task = &pop_task;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while let Some(idx) = pop_task(worker) {
                        out.push((idx, f(&items[idx])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(idx, _)| *idx);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Runs `f`, adding its wall-clock to `slot` when `enabled`.
fn staged<R>(enabled: bool, slot: &mut u64, f: impl FnOnce() -> R) -> R {
    if enabled {
        let started = Instant::now();
        let out = f();
        *slot += started.elapsed().as_nanos() as u64;
        out
    } else {
        f()
    }
}

/// Runs the full pipeline for one seed of one case study.
pub fn run_scenario<C: CaseStudy>(case: &C, seed: u64, cfg: &SweepConfig) -> ScenarioRecord {
    let mut generate_ns = 0;
    let scenario = staged(cfg.time, &mut generate_ns, || {
        case.generate(seed, &cfg.profile)
    });
    let mut record = run_generated(case, &scenario, cfg);
    if let Some(timings) = &mut record.timings {
        timings.generate_ns = generate_ns;
    }
    record
}

/// Runs the full pipeline on an already-generated scenario (callers that
/// want to display the program first generate once and reuse it here).
///
/// The pipeline is artifact-threaded: the scenario is typechecked **once**
/// and compiled **once**, and the resulting [`CaseStudy::Compiled`] artifact
/// is borrowed by the model-check stage and then consumed by execution —
/// no stage recompiles, no stage clones.  Only shrink re-checks (which
/// examine different, smaller programs) compile again.
pub fn run_generated<C: CaseStudy>(
    case: &C,
    scenario: &semint_core::case::Scenario<C::Program, C::Ty>,
    cfg: &SweepConfig,
) -> ScenarioRecord {
    let seed = scenario.seed;
    let rendered = scenario.program.to_string();
    let mut timings = StageTimings::default();
    let mut record = ScenarioRecord {
        seed,
        ty: scenario.ty.to_string(),
        program_chars: rendered.chars().count(),
        boundaries: case.boundary_count(&scenario.program),
        stats: None,
        failure: None,
        timings: None,
    };
    let plain_failure = |stage: FailStage, reason: String| FailureRecord {
        seed,
        stage,
        reason,
        witness: rendered.clone(),
        shrunk: rendered.clone(),
        shrink_steps: 0,
    };
    let time = cfg.time;
    let finish = move |mut record: ScenarioRecord, timings: StageTimings| {
        if time {
            record.timings = Some(timings);
        }
        record
    };

    // 1. The generator's type claim must re-check — the only typecheck the
    // scenario will ever get.
    let checked = staged(cfg.time, &mut timings.typecheck_ns, || {
        case.typecheck(&scenario.program)
    });
    match checked {
        Ok(checked) if checked == scenario.ty => {}
        Ok(checked) => {
            record.failure = Some(plain_failure(
                FailStage::Typecheck,
                format!("claimed {}, checked {}", scenario.ty, checked),
            ));
            return finish(record, timings);
        }
        Err(err) => {
            record.failure = Some(plain_failure(FailStage::Typecheck, err));
            return finish(record, timings);
        }
    }

    // 2. Compile exactly once; every downstream stage consumes this one
    // artifact (shrink re-checks, which examine *different*, smaller
    // programs, compile their own).
    let compiled = staged(cfg.time, &mut timings.compile_ns, || {
        case.compile(&scenario.program)
    });
    let compiled = match compiled {
        Ok(compiled) => compiled,
        Err(err) => {
            record.failure = Some(plain_failure(FailStage::Compile, err));
            return finish(record, timings);
        }
    };

    // 3. Model check *borrows* the artifact before execution consumes it
    // (execution takes the artifact by value so nothing is cloned on the
    // hot path).  The verdict is deferred until after the run: an unsafe
    // run outcome still takes precedence over a model-check rejection,
    // exactly as when the stages ran in pipeline order.
    let model_verdict = if cfg.model_check {
        staged(cfg.time, &mut timings.model_check_ns, || {
            case.model_check_compiled(&scenario.program, &scenario.ty, &compiled)
        })
    } else {
        Ok(())
    };

    // 4. Execute the artifact under the budget — no recompile, no clone.
    let report = staged(cfg.time, &mut timings.run_ns, || {
        case.execute(compiled, cfg.profile.fuel)
    });
    let stats = case.stats(&report);
    record.stats = Some(stats);
    if !stats.outcome.is_safe() {
        let (shrunk, steps) = shrink_failure(case, &scenario.program, |p| {
            case.typecheck(p).is_ok()
                && case
                    .run(p, cfg.profile.fuel)
                    .map(|r| !case.stats(&r).outcome.is_safe())
                    .unwrap_or(false)
        });
        record.failure = Some(FailureRecord {
            seed,
            stage: FailStage::Run,
            reason: format!("unsafe outcome {}", stats.outcome),
            witness: rendered.clone(),
            shrunk: shrunk.to_string(),
            shrink_steps: steps,
        });
        return finish(record, timings);
    }

    // 5. The deferred model-check verdict, shrinking any counterexample.
    if let Err(check) = model_verdict {
        let (shrunk, steps) = shrink_failure(case, &scenario.program, |p| {
            case.typecheck(p)
                .map(|ty| case.model_check(p, &ty).is_err())
                .unwrap_or(false)
        });
        record.failure = Some(FailureRecord {
            seed,
            stage: FailStage::ModelCheck,
            reason: check.to_string(),
            witness: rendered,
            shrunk: shrunk.to_string(),
            shrink_steps: steps,
        });
    }
    finish(record, timings)
}

fn check_size(source: &(impl ScenarioSource + ?Sized), case_names: &[&str]) {
    let total = source.total(case_names);
    assert!(
        total <= MAX_SEEDS_PER_SWEEP,
        "{} supplies {total} scenarios, exceeding MAX_SEEDS_PER_SWEEP ({MAX_SEEDS_PER_SWEEP})",
        source.describe(),
    );
}

/// Records the per-sweep glue-cache counters into `report`, as the
/// difference between two snapshots of the case's shared cache.
fn record_glue_stats<C: CaseStudy>(
    case: &C,
    before: Option<semint_core::GlueCacheStats>,
    report: &mut CaseReport,
) {
    if let (Some(before), Some(after)) = (before, case.glue_cache_stats()) {
        let delta = after.since(&before);
        report.glue_hits = delta.hits;
        report.glue_misses = delta.misses;
    }
}

/// Sweeps one case study over the scenarios a [`ScenarioSource`] supplies
/// for it.
pub fn sweep_case<C, S>(case: &C, source: &S, cfg: &SweepConfig) -> CaseReport
where
    C: CaseStudy + Sync,
    S: ScenarioSource + ?Sized,
{
    check_size(source, &[case.name()]);
    let cfg = cfg.resolved_for(source);
    let glue_before = case.glue_cache_stats();
    let seeds = source.seeds(case.name());
    let records = parallel_map(&seeds, cfg.jobs, |&seed| run_scenario(case, seed, &cfg));
    let mut report = CaseReport::new(case.name());
    for record in &records {
        report.absorb(record);
    }
    record_glue_stats(case, glue_before, &mut report);
    report
}

/// Sweeps several case studies through **one shared pool**: all (case, seed)
/// tasks are interleaved, so the three case studies genuinely run in
/// parallel rather than back to back.
///
/// Every worker consults the same per-case [`semint_core::GlueCache`]
/// (conversion schemes share their cache across clones), so compound glue is
/// derived once per type pair per sweep; the per-case hit/miss deltas land in
/// [`CaseReport::glue_hits`] / [`CaseReport::glue_misses`].
pub fn sweep_all<C, S>(cases: &[C], source: &S, cfg: &SweepConfig) -> SweepReport
where
    C: CaseStudy + Sync,
    S: ScenarioSource + ?Sized,
{
    let case_names: Vec<&str> = cases.iter().map(|c| c.name()).collect();
    check_size(source, &case_names);
    let cfg = cfg.resolved_for(source);
    let glue_before: Vec<_> = cases.iter().map(|case| case.glue_cache_stats()).collect();
    let tasks: Vec<(usize, u64)> = cases
        .iter()
        .enumerate()
        .flat_map(|(idx, case)| {
            source
                .seeds(case.name())
                .into_iter()
                .map(move |seed| (idx, seed))
        })
        .collect();
    let records = parallel_map(&tasks, cfg.jobs, |&(idx, seed)| {
        (idx, run_scenario(&cases[idx], seed, &cfg))
    });
    let mut reports: Vec<CaseReport> = cases
        .iter()
        .map(|case| CaseReport::new(case.name()))
        .collect();
    for (idx, record) in &records {
        reports[*idx].absorb(record);
    }
    for ((case, report), before) in cases.iter().zip(&mut reports).zip(glue_before) {
        record_glue_stats(case, before, report);
    }
    SweepReport { cases: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..250).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_runs_every_task_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..503).collect();
        let out = parallel_map(&items, 4, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 503);
        assert_eq!(counter.load(Ordering::SeqCst), 503);
    }

    #[test]
    fn parallel_map_handles_empty_and_oversized_jobs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        let one = vec![9u64];
        assert_eq!(parallel_map(&one, 64, |&x| x + 1), vec![10]);
    }
}
