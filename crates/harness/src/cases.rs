//! The [`AnyCase`] dispatcher: all three case studies behind one task type.
//!
//! The engine's pool is generic over one `CaseStudy`; to interleave tasks
//! from *different* case studies in a single sweep, their `Program`/`Ty`/
//! `Report` types are erased into enums here.  Each method dispatches on the
//! (case, program) pair; handing a program to the wrong case study is a
//! driver bug and reported as such rather than silently ignored.

use affine_interop::harness::{AffProgram, AffSourceType, AffineCase};
use memgc_interop::harness::{MemGcCase, MgProgram, MgSourceType};
use semint_core::case::{CaseStudy, CheckFailure, GenProfile, Scenario};
use semint_core::stats::RunStats;
use semint_core::Fuel;
use sharedmem::harness::{SharedMemCase, SmProgram};
use sharedmem::multilang::SourceType;
use std::fmt;

/// A program of any case study.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyProgram {
    /// Case study 1.
    SharedMem(SmProgram),
    /// Case study 2.
    Affine(AffProgram),
    /// Case study 3.
    MemGc(MgProgram),
}

impl fmt::Display for AnyProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyProgram::SharedMem(p) => write!(f, "{p}"),
            AnyProgram::Affine(p) => write!(f, "{p}"),
            AnyProgram::MemGc(p) => write!(f, "{p}"),
        }
    }
}

/// A source type of any case study.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyTy {
    /// Case study 1.
    SharedMem(SourceType),
    /// Case study 2.
    Affine(AffSourceType),
    /// Case study 3.
    MemGc(MgSourceType),
}

impl fmt::Display for AnyTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyTy::SharedMem(t) => write!(f, "{t}"),
            AnyTy::Affine(t) => write!(f, "{t}"),
            AnyTy::MemGc(t) => write!(f, "{t}"),
        }
    }
}

/// A run report of any case study.
#[derive(Debug, Clone)]
pub enum AnyReport {
    /// StackLang results (case study 1).
    StackLang(stacklang::RunResult),
    /// LCVM results (case studies 2–3).
    Lcvm(lcvm::RunResult),
}

/// A compiled artifact of any case study — the first-class object the sweep
/// engine threads from the compile stage through model checking into
/// execution, so each scenario is compiled exactly once.
#[derive(Debug, Clone)]
pub enum AnyCompiled {
    /// A StackLang program (case study 1).
    SharedMem(stacklang::Program),
    /// An LCVM compile output with its static-binder report (case study 2).
    Affine(affine_interop::compile::CompileOutput),
    /// An LCVM expression (case study 3).
    MemGc(lcvm::Expr),
}

/// One of the three case studies, selected at runtime.
#[derive(Debug, Clone)]
pub enum AnyCase {
    /// Case study 1: shared-memory interoperability.
    SharedMem(SharedMemCase),
    /// Case study 2: affine ⊸ unrestricted.
    Affine(AffineCase),
    /// Case study 3: memory management & polymorphism.
    MemGc(MemGcCase),
}

impl AnyCase {
    /// All three case studies, optionally with their deliberately broken
    /// variants (used to demonstrate counterexample reporting).
    pub fn all(broken: bool) -> Vec<AnyCase> {
        vec![
            AnyCase::SharedMem(if broken {
                SharedMemCase::broken()
            } else {
                SharedMemCase::standard()
            }),
            AnyCase::Affine(if broken {
                AffineCase::broken()
            } else {
                AffineCase::standard()
            }),
            AnyCase::MemGc(if broken {
                MemGcCase::broken()
            } else {
                MemGcCase::standard()
            }),
        ]
    }

    /// Looks a case study up by name (`sharedmem`, `affine`, `memgc`).
    pub fn by_name(name: &str, broken: bool) -> Option<AnyCase> {
        match name {
            "sharedmem" => Some(AnyCase::SharedMem(if broken {
                SharedMemCase::broken()
            } else {
                SharedMemCase::standard()
            })),
            "affine" => Some(AnyCase::Affine(if broken {
                AffineCase::broken()
            } else {
                AffineCase::standard()
            })),
            "memgc" => Some(AnyCase::MemGc(if broken {
                MemGcCase::broken()
            } else {
                MemGcCase::standard()
            })),
            _ => None,
        }
    }
}

/// The error used when a program is handed to the wrong case study.
fn mismatch<T>(case: &AnyCase) -> Result<T, String> {
    Err(format!(
        "program does not belong to case study `{}`",
        case.name()
    ))
}

impl CaseStudy for AnyCase {
    type Program = AnyProgram;
    type Ty = AnyTy;
    type Report = AnyReport;
    type Compiled = AnyCompiled;

    fn name(&self) -> &'static str {
        match self {
            AnyCase::SharedMem(c) => c.name(),
            AnyCase::Affine(c) => c.name(),
            AnyCase::MemGc(c) => c.name(),
        }
    }

    fn generate(&self, seed: u64, profile: &GenProfile) -> Scenario<AnyProgram, AnyTy> {
        match self {
            AnyCase::SharedMem(c) => {
                let s = c.generate(seed, profile);
                Scenario {
                    seed,
                    program: AnyProgram::SharedMem(s.program),
                    ty: AnyTy::SharedMem(s.ty),
                }
            }
            AnyCase::Affine(c) => {
                let s = c.generate(seed, profile);
                Scenario {
                    seed,
                    program: AnyProgram::Affine(s.program),
                    ty: AnyTy::Affine(s.ty),
                }
            }
            AnyCase::MemGc(c) => {
                let s = c.generate(seed, profile);
                Scenario {
                    seed,
                    program: AnyProgram::MemGc(s.program),
                    ty: AnyTy::MemGc(s.ty),
                }
            }
        }
    }

    fn typecheck(&self, program: &AnyProgram) -> Result<AnyTy, String> {
        match (self, program) {
            (AnyCase::SharedMem(c), AnyProgram::SharedMem(p)) => {
                c.typecheck(p).map(AnyTy::SharedMem)
            }
            (AnyCase::Affine(c), AnyProgram::Affine(p)) => c.typecheck(p).map(AnyTy::Affine),
            (AnyCase::MemGc(c), AnyProgram::MemGc(p)) => c.typecheck(p).map(AnyTy::MemGc),
            _ => mismatch(self),
        }
    }

    fn compile(&self, program: &AnyProgram) -> Result<AnyCompiled, String> {
        match (self, program) {
            (AnyCase::SharedMem(c), AnyProgram::SharedMem(p)) => {
                c.compile(p).map(AnyCompiled::SharedMem)
            }
            (AnyCase::Affine(c), AnyProgram::Affine(p)) => c.compile(p).map(AnyCompiled::Affine),
            (AnyCase::MemGc(c), AnyProgram::MemGc(p)) => c.compile(p).map(AnyCompiled::MemGc),
            _ => mismatch(self),
        }
    }

    fn execute(&self, compiled: AnyCompiled, fuel: Fuel) -> AnyReport {
        match (self, compiled) {
            (AnyCase::SharedMem(c), AnyCompiled::SharedMem(a)) => {
                AnyReport::StackLang(c.execute(a, fuel))
            }
            (AnyCase::Affine(c), AnyCompiled::Affine(a)) => AnyReport::Lcvm(c.execute(a, fuel)),
            (AnyCase::MemGc(c), AnyCompiled::MemGc(a)) => AnyReport::Lcvm(c.execute(a, fuel)),
            // A mismatched artifact cannot be produced through this trait;
            // the engine always pairs a case's own artifact with its
            // execute call.
            _ => unreachable!("artifact does not belong to case study `{}`", self.name()),
        }
    }

    fn execute_batch(&self, batch: Vec<AnyCompiled>, fuel: Fuel) -> Vec<AnyReport> {
        // Unwrap the erased artifacts into the case study's own type so its
        // batched runner (one reused machine for the whole batch) does the
        // driving; mismatched artifacts cannot be produced through this
        // trait, exactly as in `execute`.
        let foreign =
            || -> ! { unreachable!("artifact does not belong to case study `{}`", self.name()) };
        match self {
            AnyCase::SharedMem(c) => {
                let artifacts = batch
                    .into_iter()
                    .map(|compiled| match compiled {
                        AnyCompiled::SharedMem(a) => a,
                        _ => foreign(),
                    })
                    .collect();
                c.execute_batch(artifacts, fuel)
                    .into_iter()
                    .map(AnyReport::StackLang)
                    .collect()
            }
            AnyCase::Affine(c) => {
                let artifacts = batch
                    .into_iter()
                    .map(|compiled| match compiled {
                        AnyCompiled::Affine(a) => a,
                        _ => foreign(),
                    })
                    .collect();
                c.execute_batch(artifacts, fuel)
                    .into_iter()
                    .map(AnyReport::Lcvm)
                    .collect()
            }
            AnyCase::MemGc(c) => {
                let artifacts = batch
                    .into_iter()
                    .map(|compiled| match compiled {
                        AnyCompiled::MemGc(a) => a,
                        _ => foreign(),
                    })
                    .collect();
                c.execute_batch(artifacts, fuel)
                    .into_iter()
                    .map(AnyReport::Lcvm)
                    .collect()
            }
        }
    }

    fn stats(&self, report: &AnyReport) -> RunStats {
        match (self, report) {
            (AnyCase::SharedMem(c), AnyReport::StackLang(r)) => c.stats(r),
            (AnyCase::Affine(c), AnyReport::Lcvm(r)) => c.stats(r),
            (AnyCase::MemGc(c), AnyReport::Lcvm(r)) => c.stats(r),
            // A mismatched report cannot be produced through this trait; the
            // engine always pairs a case's own report with its stats call.
            _ => unreachable!("report does not belong to case study `{}`", self.name()),
        }
    }

    fn model_check_compiled(
        &self,
        program: &AnyProgram,
        ty: &AnyTy,
        compiled: &AnyCompiled,
    ) -> Result<(), CheckFailure> {
        let bug = |case: &AnyCase| CheckFailure {
            claim: "driver invariant".into(),
            witness: program.to_string(),
            reason: format!("program does not belong to case study `{}`", case.name()),
        };
        match (self, program, ty, compiled) {
            (
                AnyCase::SharedMem(c),
                AnyProgram::SharedMem(p),
                AnyTy::SharedMem(t),
                AnyCompiled::SharedMem(a),
            ) => c.model_check_compiled(p, t, a),
            (
                AnyCase::Affine(c),
                AnyProgram::Affine(p),
                AnyTy::Affine(t),
                AnyCompiled::Affine(a),
            ) => c.model_check_compiled(p, t, a),
            (AnyCase::MemGc(c), AnyProgram::MemGc(p), AnyTy::MemGc(t), AnyCompiled::MemGc(a)) => {
                c.model_check_compiled(p, t, a)
            }
            _ => Err(bug(self)),
        }
    }

    fn shrink(&self, program: &AnyProgram) -> Vec<AnyProgram> {
        match (self, program) {
            (AnyCase::SharedMem(c), AnyProgram::SharedMem(p)) => {
                c.shrink(p).into_iter().map(AnyProgram::SharedMem).collect()
            }
            (AnyCase::Affine(c), AnyProgram::Affine(p)) => {
                c.shrink(p).into_iter().map(AnyProgram::Affine).collect()
            }
            (AnyCase::MemGc(c), AnyProgram::MemGc(p)) => {
                c.shrink(p).into_iter().map(AnyProgram::MemGc).collect()
            }
            _ => Vec::new(),
        }
    }

    fn boundary_count(&self, program: &AnyProgram) -> usize {
        match (self, program) {
            (AnyCase::SharedMem(c), AnyProgram::SharedMem(p)) => c.boundary_count(p),
            (AnyCase::Affine(c), AnyProgram::Affine(p)) => c.boundary_count(p),
            (AnyCase::MemGc(c), AnyProgram::MemGc(p)) => c.boundary_count(p),
            // A foreign program has no boundaries *of this case study*.
            _ => 0,
        }
    }

    fn check_conversions(&self) -> Result<(), CheckFailure> {
        match self {
            AnyCase::SharedMem(c) => c.check_conversions(),
            AnyCase::Affine(c) => c.check_conversions(),
            AnyCase::MemGc(c) => c.check_conversions(),
        }
    }

    fn glue_cache_stats(&self) -> Option<semint_core::GlueCacheStats> {
        match self {
            AnyCase::SharedMem(c) => c.glue_cache_stats(),
            AnyCase::Affine(c) => c.glue_cache_stats(),
            AnyCase::MemGc(c) => c.glue_cache_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_round_trips() {
        for name in ["sharedmem", "affine", "memgc"] {
            let case = AnyCase::by_name(name, false).expect("known name");
            assert_eq!(case.name(), name);
        }
        assert!(AnyCase::by_name("unknown", false).is_none());
    }

    #[test]
    fn generated_any_scenarios_typecheck() {
        let cfg = GenProfile::standard();
        for case in AnyCase::all(false) {
            for seed in 0..10 {
                let scen = case.generate(seed, &cfg);
                let checked = case.typecheck(&scen.program).expect("well-typed");
                assert_eq!(checked, scen.ty, "{} seed {seed}", case.name());
            }
        }
    }

    #[test]
    fn cross_case_programs_are_rejected() {
        let sm = AnyCase::by_name("sharedmem", false).unwrap();
        let affine = AnyCase::by_name("affine", false).unwrap();
        let scen = affine.generate(0, &GenProfile::standard());
        assert!(sm.typecheck(&scen.program).is_err());
        assert!(sm.model_check(&scen.program, &scen.ty).is_err());
    }
}
