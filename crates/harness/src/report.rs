//! Plain-text rendering of sweep reports for the `semint` CLI.
//!
//! Two kinds of sweep-time signal land here: the optional per-stage
//! wall-clock block (`--time`), and the always-on deterministic VM counters
//! — instructions retired by opcode class, boundary crossings, allocation
//! totals, high-water marks — which are digest-grade facts identical across
//! every `--jobs`/`--batch`/shard combination.

use semint_core::stats::{CaseReport, SweepReport};

/// Renders one case report as an aligned block.
pub fn render_case(report: &CaseReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("case {}\n", report.case));
    out.push_str(&format!("  scenarios        {:>10}\n", report.scenarios));
    out.push_str(&format!("  total steps      {:>10}\n", report.total_steps));
    out.push_str(&format!(
        "  boundaries       {:>10}\n",
        report.total_boundaries
    ));
    let avg_chars = report
        .total_program_chars
        .checked_div(report.scenarios)
        .unwrap_or(0);
    out.push_str(&format!("  avg program size {:>10} chars\n", avg_chars));
    out.push_str(&format!(
        "  glue cache       {:>10} hits / {} misses ({:.1}% hit rate)\n",
        report.glue_hits,
        report.glue_misses,
        report.glue_hit_rate() * 100.0
    ));
    if !report.counters.is_zero() {
        out.push_str("  vm counters\n");
        for (label, value) in report.counters.fields() {
            out.push_str(&format!("    {label:<18} {value:>12}\n"));
        }
        out.push_str(&format!(
            "    {:<18} {:>12}\n",
            "total_instrs",
            report.counters.total_instrs()
        ));
    }
    if let Some(timings) = &report.timings {
        out.push_str("  stage wall-clock\n");
        for (label, ns) in timings.stages() {
            out.push_str(&format!(
                "    {label:<14} {:>10.3} ms\n",
                ns as f64 / 1_000_000.0
            ));
        }
        out.push_str(&format!(
            "    {:<14} {:>10.3} ms\n",
            "total",
            timings.total_ns() as f64 / 1_000_000.0
        ));
    }
    out.push_str("  outcomes\n");
    if report.outcome_histogram.is_empty() {
        out.push_str("    (none)\n");
    }
    for (label, count) in &report.outcome_histogram {
        out.push_str(&format!("    {label:<14} {count:>8}\n"));
    }
    out.push_str(&format!(
        "  failures         {:>10}\n",
        report.failures.len()
    ));
    for failure in &report.failures {
        out.push_str(&format!(
            "    seed {:>6} [{}] {}\n      witness: {}\n      shrunk ({} steps): {}\n",
            failure.seed,
            failure.stage,
            failure.reason,
            truncate(&failure.witness, 120),
            failure.shrink_steps,
            truncate(&failure.shrunk, 120),
        ));
    }
    out
}

/// Renders a whole sweep report.
pub fn render_sweep(report: &SweepReport) -> String {
    let mut out = String::new();
    for case in &report.cases {
        out.push_str(&render_case(case));
        out.push('\n');
    }
    out.push_str(&format!(
        "total: {} scenarios, {} failures\n",
        report.scenarios(),
        report.failure_count()
    ));
    out
}

/// Renders a `semint serve` job's rolling merge: the digests-so-far of a
/// partially merged sweep, one compact line per case, headed by shard
/// progress.  Once every shard has landed these digests are byte-identical
/// to the unsharded sweep's, so the rolling view converges on exactly what
/// [`render_sweep`] would show for a one-shot run.
pub fn render_rolling(report: &SweepReport, shards_done: u64, shards_total: u64) -> String {
    let mut out = format!("rolling merge: {shards_done}/{shards_total} shards\n");
    if report.cases.is_empty() {
        out.push_str("  (no shard results yet)\n");
        return out;
    }
    for case in &report.cases {
        out.push_str(&format!(
            "  case {:<12} {:>8} scenarios · {:>3} failures · {}\n",
            case.case,
            case.scenarios,
            case.failures.len(),
            case.digest()
        ));
    }
    out
}

fn truncate(s: &str, max_chars: usize) -> String {
    if s.chars().count() <= max_chars {
        s.to_string()
    } else {
        let prefix: String = s.chars().take(max_chars).collect();
        format!("{prefix}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::stats::{FailStage, FailureRecord};

    #[test]
    fn render_includes_failures_and_totals() {
        let mut case = CaseReport::new("sharedmem");
        case.scenarios = 2;
        case.failures.push(FailureRecord {
            seed: 7,
            stage: FailStage::ModelCheck,
            reason: "not in E⟦bool⟧".into(),
            witness: "if true then false else true".into(),
            shrunk: "true".into(),
            shrink_steps: 3,
        });
        let text = render_sweep(&SweepReport { cases: vec![case] });
        assert!(text.contains("case sharedmem"));
        assert!(text.contains("seed      7"));
        assert!(text.contains("shrunk (3 steps): true"));
        assert!(text.contains("total: 2 scenarios, 1 failures"));
    }

    #[test]
    fn render_includes_glue_cache_and_timings() {
        let mut case = CaseReport::new("memgc");
        case.scenarios = 4;
        case.glue_hits = 30;
        case.glue_misses = 10;
        case.timings = Some(semint_core::StageTimings {
            generate_ns: 2_000_000,
            typecheck_ns: 1_000_000,
            compile_ns: 500_000,
            run_ns: 4_000_000,
            model_check_ns: 0,
        });
        let text = render_case(&case);
        assert!(text.contains("glue cache"), "{text}");
        assert!(
            text.contains("30 hits / 10 misses (75.0% hit rate)"),
            "{text}"
        );
        assert!(text.contains("stage wall-clock"), "{text}");
        assert!(text.contains("generate"), "{text}");
        assert!(text.contains("model-check"), "{text}");
        assert!(text.contains("total"), "{text}");
    }

    #[test]
    fn render_includes_vm_counters_when_nonzero() {
        let mut case = CaseReport::new("affine");
        case.scenarios = 2;
        case.counters = semint_core::VmCounters {
            instr_data: 7,
            instr_control: 2,
            instr_fun: 3,
            instr_heap: 1,
            boundary_crossings: 4,
            heap_allocs: 1,
            heap_frees: 1,
            heap_reuses: 0,
            heap_peak_live: 1,
            stack_peak: 5,
        };
        let text = render_case(&case);
        assert!(text.contains("vm counters"), "{text}");
        assert!(text.contains("instr_data"), "{text}");
        assert!(text.contains("total_instrs"), "{text}");
        // A pre-counter report (all zero) renders no counter block.
        let legacy = render_case(&CaseReport::new("affine"));
        assert!(!legacy.contains("vm counters"), "{legacy}");
    }

    #[test]
    fn rolling_render_shows_progress_and_converged_digests() {
        let empty = render_rolling(&SweepReport::default(), 0, 4);
        assert!(empty.contains("0/4 shards"), "{empty}");
        assert!(empty.contains("no shard results yet"), "{empty}");
        let mut case = CaseReport::new("memgc");
        case.scenarios = 9;
        let digest = case.digest();
        let text = render_rolling(&SweepReport { cases: vec![case] }, 3, 4);
        assert!(text.contains("3/4 shards"), "{text}");
        assert!(text.contains("case memgc"), "{text}");
        assert!(text.contains(&digest), "{text}");
    }

    #[test]
    fn truncate_caps_long_witnesses() {
        assert_eq!(truncate("short", 10), "short");
        let long = "x".repeat(200);
        let t = truncate(&long, 120);
        assert_eq!(t.chars().count(), 121);
        assert!(t.ends_with('…'));
    }
}
