//! Structural counterexample shrinking.
//!
//! When a scenario fails (an unsafe run, or a model-check rejection), the
//! engine searches for a smaller program with the same failure.  Each case
//! study's [`CaseStudy::shrink`] proposes *immediate* subterms; the shrinker
//! closes them transitively (bounded by [`MAX_CANDIDATES`]), orders them
//! smallest-rendering-first, and replaces the current witness with the first
//! candidate the failing check still rejects.  Going through the transitive
//! closure matters: a failing subterm is often nested under intermediate
//! terms that do not themselves fail (e.g. a failing `bool` expression
//! sitting inside a sound pair), which a purely greedy parent-to-child
//! descent could never reach.

use semint_core::case::CaseStudy;
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Bound on how many distinct subterm candidates one shrink round examines.
pub const MAX_CANDIDATES: usize = 2_000;

/// Bound on accepted replacement rounds (a safety net; with smallest-first
/// ordering a second round almost never finds anything further).
pub const MAX_ROUNDS: usize = 8;

/// All distinct proper subterms of `program`, smallest rendering first.
fn subterm_candidates<C: CaseStudy>(case: &C, program: &C::Program) -> Vec<C::Program> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut queue: VecDeque<C::Program> = case.shrink(program).into();
    let mut out: Vec<(usize, String, C::Program)> = Vec::new();
    while let Some(candidate) = queue.pop_front() {
        if out.len() >= MAX_CANDIDATES {
            break;
        }
        let rendered = candidate.to_string();
        if !seen.insert(rendered.clone()) {
            continue;
        }
        queue.extend(case.shrink(&candidate));
        out.push((rendered.chars().count(), rendered, candidate));
    }
    // Sort by size, tie-broken by rendering, so the result is deterministic
    // regardless of traversal order.
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out.into_iter().map(|(_, _, p)| p).collect()
}

/// Shrinks `program` while `still_fails` holds, returning the smallest
/// failing program found and the number of accepted replacements.
///
/// `still_fails` must treat ill-typed candidates as non-failing (the engine's
/// predicates re-typecheck candidates first), otherwise shrinking could walk
/// out of the well-typed fragment and report an uncheckable witness.
pub fn shrink_failure<C: CaseStudy>(
    case: &C,
    program: &C::Program,
    still_fails: impl Fn(&C::Program) -> bool,
) -> (C::Program, usize) {
    let mut current = program.clone();
    let mut rounds = 0;
    while rounds < MAX_ROUNDS {
        let replacement = subterm_candidates(case, &current)
            .into_iter()
            .find(|candidate| still_fails(candidate));
        match replacement {
            Some(smaller) => {
                current = smaller;
                rounds += 1;
            }
            None => break,
        }
    }
    (current, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semint_core::case::{CheckFailure, GenProfile, Scenario};
    use semint_core::stats::{OutcomeClass, RunStats};
    use semint_core::Fuel;

    /// A toy case study over unary "programs" (`usize` nesting depth) where
    /// every program ≥ its threshold fails; shrinking should land on exactly
    /// the threshold.
    struct Toy {
        threshold: usize,
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Depth(usize);

    impl std::fmt::Display for Depth {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Unary rendering so "smaller program" and "smaller depth" agree.
            write!(f, "{}", "s".repeat(self.0))
        }
    }

    impl CaseStudy for Toy {
        type Program = Depth;
        type Ty = Depth;
        type Report = ();
        type Compiled = ();

        fn name(&self) -> &'static str {
            "toy"
        }
        fn generate(&self, seed: u64, _profile: &GenProfile) -> Scenario<Depth, Depth> {
            Scenario {
                seed,
                program: Depth(seed as usize),
                ty: Depth(seed as usize),
            }
        }
        fn typecheck(&self, p: &Depth) -> Result<Depth, String> {
            Ok(p.clone())
        }
        fn compile(&self, _p: &Depth) -> Result<(), String> {
            Ok(())
        }
        fn execute(&self, _compiled: (), _fuel: Fuel) {}
        fn stats(&self, _r: &()) -> RunStats {
            RunStats {
                outcome: OutcomeClass::Value,
                steps: 0,
                counters: Default::default(),
            }
        }
        fn boundary_count(&self, _p: &Depth) -> usize {
            0
        }
        fn model_check_compiled(
            &self,
            p: &Depth,
            _ty: &Depth,
            _compiled: &(),
        ) -> Result<(), CheckFailure> {
            if p.0 >= self.threshold {
                Err(CheckFailure {
                    claim: "toy".into(),
                    witness: p.to_string(),
                    reason: "too deep".into(),
                })
            } else {
                Ok(())
            }
        }
        fn shrink(&self, p: &Depth) -> Vec<Depth> {
            if p.0 == 0 {
                Vec::new()
            } else {
                vec![Depth(p.0 - 1)]
            }
        }
    }

    #[test]
    fn shrinks_to_the_minimal_failing_program() {
        let toy = Toy { threshold: 3 };
        let (shrunk, rounds) = shrink_failure(&toy, &Depth(10), |p| toy.model_check(p, p).is_err());
        assert_eq!(shrunk, Depth(3));
        assert_eq!(
            rounds, 1,
            "smallest-first ordering finds the minimum in one round"
        );
    }

    #[test]
    fn no_shrink_when_nothing_smaller_fails() {
        let toy = Toy { threshold: 10 };
        let (shrunk, rounds) = shrink_failure(&toy, &Depth(10), |p| toy.model_check(p, p).is_err());
        assert_eq!(shrunk, Depth(10));
        assert_eq!(rounds, 0);
    }

    #[test]
    fn candidates_are_transitively_closed_and_sorted() {
        let toy = Toy { threshold: 0 };
        let candidates = subterm_candidates(&toy, &Depth(5));
        let depths: Vec<usize> = candidates.into_iter().map(|d| d.0).collect();
        assert_eq!(depths, vec![0, 1, 2, 3, 4]);
    }
}
