//! Crash-recovery tests for the durable job journal and `semint serve
//! --resume`.
//!
//! Two layers:
//!
//! * a property test that replaying **any prefix** of a valid journal —
//!   cut on a line boundary or at an arbitrary byte, as a crash would —
//!   yields consistent recovered state: no shard double-counted, nothing
//!   lost except the torn tail, and monotone growth along prefixes;
//! * integration tests where a real daemon resumes a hand-built state
//!   dir and must converge on the uninterrupted one-shot sweep's digests,
//!   reusing verified checkpoints and re-running corrupted ones.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use proptest::collection;
use proptest::prelude::*;

use semint_core::case::GenProfile;
use semint_harness::cases::AnyCase;
use semint_harness::engine::{sweep_all, SweepConfig};
use semint_harness::serve::journal::{
    checkpoint_name, content_digest, parse_event, render_event, replay, Journal, JournalEvent,
};
use semint_harness::serve::{call, Daemon, JobSpec, Request, Response, ServeConfig};
use semint_harness::source::{SeedRange, Shard};

// ---------------------------------------------------------------------------
// Property: any prefix of a valid journal replays consistently.
// ---------------------------------------------------------------------------

/// The spec shape the property test journals (seeds/profile are irrelevant
/// to replay structure; only the shard count matters).
fn prop_spec(shards: u64) -> JobSpec {
    JobSpec {
        seeds: (0, 24),
        profile: "default".into(),
        case: "all".into(),
        shards,
        jobs: 1,
        batch: 1,
        model_check: false,
        fault: None,
    }
}

/// Decodes one opaque op into the next valid journal event, given how many
/// jobs exist so far.  Ops that would reference a job before any submission
/// submit instead, so every generated history is structurally valid.
fn decode_op(op: u64, shard_counts: &[u64], submitted: &mut usize) -> Option<JournalEvent> {
    let kind = op % 8;
    if *submitted == 0 || (kind == 0 && *submitted < shard_counts.len()) {
        if *submitted == shard_counts.len() {
            return None;
        }
        let job = *submitted as u64;
        *submitted += 1;
        return Some(JournalEvent::Submitted {
            job,
            spec: prop_spec(shard_counts[job as usize]),
        });
    }
    let job = (op / 8) % *submitted as u64;
    let shard = (op / 64) % shard_counts[job as usize];
    let attempt = (op / 512) % 3;
    Some(match kind {
        1 | 2 => JournalEvent::ShardStarted {
            job,
            shard,
            attempt,
        },
        3 => JournalEvent::ShardSaved {
            job,
            shard,
            attempt,
            path: checkpoint_name(job, shard),
            digest: content_digest(&op.to_le_bytes()),
        },
        4 => JournalEvent::ShardDied {
            job,
            shard,
            attempt,
            reason: "crashed (exit code 42)".into(),
        },
        5 => JournalEvent::JobCompleted { job },
        6 => JournalEvent::JobFailed {
            job,
            reason: "retry budget exhausted".into(),
        },
        _ => JournalEvent::Resumed {
            jobs: *submitted as u64,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A crash can leave the journal cut at any line boundary (or torn
    /// mid-line); every such prefix must recover a consistent restriction
    /// of the full history.
    #[test]
    fn replaying_any_prefix_of_a_valid_journal_is_consistent(
        shard_counts in collection::vec(1u64..5, 1..4),
        ops in collection::vec(any::<u64>(), 1..80),
        cut in any::<u64>(),
    ) {
        let mut submitted = 0usize;
        let events: Vec<JournalEvent> = ops
            .iter()
            .filter_map(|&op| decode_op(op, &shard_counts, &mut submitted))
            .collect();
        let lines: Vec<String> = events.iter().map(render_event).collect();
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let full = replay(&text).expect("the generated journal is valid");

        // Line-boundary prefixes: a crash after any fsync'd append.  Each
        // prefix must replay cleanly and be a restriction of the full state:
        // the same jobs (a prefix of them), saved-shard sets that are
        // subsets growing monotonically, retries never exceeding the final
        // count, and never a shard outside the job's range (no shard is
        // ever double-counted — `saved` is keyed by shard index — and none
        // is lost, because prefixes only ever grow).
        let mut prev_saved: Vec<BTreeSet<u64>> = Vec::new();
        for k in 0..=lines.len() {
            let prefix: String = lines[..k].iter().map(|l| format!("{l}\n")).collect();
            let state = replay(&prefix).expect("every line prefix replays");
            prop_assert_eq!(state.torn_lines, 0);
            prop_assert!(state.jobs.len() <= full.jobs.len());
            for (i, job) in state.jobs.iter().enumerate() {
                prop_assert_eq!(job.id, i as u64);
                prop_assert_eq!(&job.spec, &full.jobs[i].spec);
                prop_assert!(job.retries <= full.jobs[i].retries);
                let saved: BTreeSet<u64> = job.saved.keys().copied().collect();
                prop_assert!(saved.iter().all(|&s| s < job.spec.shards));
                prop_assert!(
                    saved.is_subset(&full.jobs[i].saved.keys().copied().collect()),
                    "prefix {k} saved shards not in the full journal: {saved:?}"
                );
                if let Some(earlier) = prev_saved.get(i) {
                    prop_assert!(
                        earlier.is_subset(&saved),
                        "a longer prefix lost shard checkpoints: {earlier:?} vs {saved:?}"
                    );
                }
            }
            prev_saved = state
                .jobs
                .iter()
                .map(|j| j.saved.keys().copied().collect())
                .collect();
        }

        // Arbitrary byte cut: the torn-tail case.  At most one line is
        // lost, and what remains is still a restriction of the full state.
        let cut_at = (cut as usize) % (text.len() + 1);
        let state = replay(&text[..cut_at]).expect("byte-cut journals replay");
        prop_assert!(state.torn_lines <= 1, "one crash tears at most one line");
        for (i, job) in state.jobs.iter().enumerate() {
            prop_assert_eq!(&job.spec, &full.jobs[i].spec);
            let saved: BTreeSet<u64> = job.saved.keys().copied().collect();
            prop_assert!(
                saved.is_subset(&full.jobs[i].saved.keys().copied().collect())
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Integration: a real daemon resumes a hand-built state dir.
// ---------------------------------------------------------------------------

/// The seed range the resume tests sweep; the baseline must match.
const SEEDS: (u64, u64) = (0, 30);

fn test_config(state_dir: &Path, resume: bool) -> ServeConfig {
    ServeConfig {
        port: 0,
        workers: 2,
        queue_capacity: 4,
        heartbeat_timeout: Duration::from_secs(60),
        max_retries: 2,
        worker_binary: PathBuf::from(env!("CARGO_BIN_EXE_semint")),
        log_path: None,
        echo: false,
        state_dir: Some(state_dir.to_path_buf()),
        resume,
    }
}

fn job_spec(shards: u64) -> JobSpec {
    JobSpec {
        seeds: SEEDS,
        profile: "default".into(),
        case: "all".into(),
        shards,
        jobs: 2,
        batch: 1,
        model_check: false,
        fault: None,
    }
}

/// The uninterrupted one-shot sweep's per-case digests.
fn baseline_digests() -> Vec<String> {
    let cases = AnyCase::all(false);
    let range = SeedRange::new(SEEDS.0, SEEDS.1).unwrap();
    let cfg = SweepConfig {
        jobs: 2,
        profile: GenProfile::by_name("default").unwrap(),
        model_check: false,
        ..SweepConfig::default()
    };
    sweep_all(&cases, &range, &cfg)
        .cases
        .iter()
        .map(|c| c.digest())
        .collect()
}

/// Sweeps shard `index` of `of` in-process and returns its report's TSV —
/// exactly the checkpoint a worker would have saved before the "crash".
fn shard_checkpoint_tsv(index: u64, of: u64) -> String {
    let cases = AnyCase::all(false);
    let range = SeedRange::new(SEEDS.0, SEEDS.1).unwrap();
    let shard = Shard::new(range, index, of).unwrap();
    let cfg = SweepConfig {
        jobs: 2,
        profile: GenProfile::by_name("default").unwrap(),
        model_check: false,
        ..SweepConfig::default()
    };
    sweep_all(&cases, &shard, &cfg).to_tsv()
}

/// Builds a state dir describing a daemon that died mid-job: job 0
/// submitted with `shards` shards, shard 0 checkpointed (bytes as given),
/// shard 1 started but unaccounted.  Returns the journaled digest of the
/// checkpoint (the digest of `journaled_bytes`, which a corruption test
/// can make disagree with what is actually on disk).
fn build_interrupted_state(dir: &Path, shards: u64, checkpoint: &[u8], journaled_digest: &str) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join(checkpoint_name(0, 0)), checkpoint).unwrap();
    let mut events = vec![
        JournalEvent::Submitted {
            job: 0,
            spec: job_spec(shards),
        },
        JournalEvent::ShardStarted {
            job: 0,
            shard: 0,
            attempt: 0,
        },
        JournalEvent::ShardSaved {
            job: 0,
            shard: 0,
            attempt: 0,
            path: checkpoint_name(0, 0),
            digest: journaled_digest.to_string(),
        },
    ];
    if shards > 1 {
        events.push(JournalEvent::ShardStarted {
            job: 0,
            shard: 1,
            attempt: 0,
        });
    }
    let text: String = events
        .iter()
        .map(|e| format!("{}\n", render_event(e)))
        .collect();
    std::fs::write(Journal::path_in(dir), text).unwrap();
}

fn wait_for_done(addr: &str, job: u64) -> semint_harness::serve::JobStatus {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        assert!(
            Instant::now() < deadline,
            "job {job} did not settle within the deadline"
        );
        match call(addr, &Request::Status { job: Some(job) }).expect("status call") {
            Response::Status { jobs, .. } => {
                let status = jobs.into_iter().next().expect("requested job exists");
                if status.state == "done" || status.state == "failed" {
                    return status;
                }
            }
            other => panic!("unexpected status response: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn shutdown_and_join(addr: &str, daemon: Daemon) {
    match call(addr, &Request::Shutdown).expect("shutdown call") {
        Response::Ok => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    daemon.join();
}

/// Parses the journal and returns the shard indices of every
/// `shard-started` event *after* the last `daemon-resumed` marker, plus
/// whether `job-completed` was journaled for job 0.
fn post_resume_activity(dir: &Path) -> (BTreeSet<u64>, bool) {
    let text = std::fs::read_to_string(Journal::path_in(dir)).expect("journal exists");
    let events: Vec<JournalEvent> = text.lines().filter_map(|l| parse_event(l).ok()).collect();
    let last_resume = events
        .iter()
        .rposition(|e| matches!(e, JournalEvent::Resumed { .. }))
        .expect("the resumed daemon journaled its marker");
    let started: BTreeSet<u64> = events[last_resume..]
        .iter()
        .filter_map(|e| match e {
            JournalEvent::ShardStarted { shard, .. } => Some(*shard),
            _ => None,
        })
        .collect();
    let completed = events[last_resume..]
        .iter()
        .any(|e| matches!(e, JournalEvent::JobCompleted { job: 0 }));
    (started, completed)
}

#[test]
fn resume_reuses_verified_checkpoints_and_converges_on_one_shot_digests() {
    let dir = std::env::temp_dir().join(format!("semint-resume-test-{}-ok", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tsv = shard_checkpoint_tsv(0, 3);
    build_interrupted_state(&dir, 3, tsv.as_bytes(), &content_digest(tsv.as_bytes()));

    let daemon = Daemon::spawn(test_config(&dir, true)).expect("daemon resumes");
    let addr = format!("127.0.0.1:{}", daemon.port());
    let status = wait_for_done(&addr, 0);
    assert_eq!(status.state, "done", "error: {:?}", status.error);
    assert!(status.recovered, "the job came from the journal");
    assert_eq!(status.shards_done, 3);
    assert_eq!(
        status.digests,
        baseline_digests(),
        "resumed digests must be byte-identical to the uninterrupted sweep"
    );
    shutdown_and_join(&addr, daemon);

    let (started, completed) = post_resume_activity(&dir);
    assert!(
        !started.contains(&0),
        "the verified shard-0 checkpoint must be reused, not re-run: {started:?}"
    );
    assert_eq!(
        started,
        BTreeSet::from([1, 2]),
        "only the unaccounted shards are re-issued"
    );
    assert!(completed, "the resumed job's completion is journaled");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_corrupted_checkpoint_and_reruns_that_shard() {
    let dir = std::env::temp_dir().join(format!("semint-resume-test-{}-bad", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tsv = shard_checkpoint_tsv(0, 3);
    // The journal records the digest of the *true* report, but the bytes on
    // disk were damaged after the fsync — resume must notice and re-run.
    let mut damaged = tsv.clone().into_bytes();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0xff;
    build_interrupted_state(&dir, 3, &damaged, &content_digest(tsv.as_bytes()));

    let daemon = Daemon::spawn(test_config(&dir, true)).expect("daemon resumes");
    let addr = format!("127.0.0.1:{}", daemon.port());
    let status = wait_for_done(&addr, 0);
    assert_eq!(status.state, "done", "error: {:?}", status.error);
    assert_eq!(
        status.digests,
        baseline_digests(),
        "digests converge even when a checkpoint had to be discarded"
    );
    shutdown_and_join(&addr, daemon);

    let (started, _) = post_resume_activity(&dir);
    assert_eq!(
        started,
        BTreeSet::from([0, 1, 2]),
        "the corrupted shard 0 is re-issued along with the unaccounted ones"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_restores_settled_jobs_and_status_lists_them_alongside_new_ones() {
    let dir = std::env::temp_dir().join(format!("semint-resume-test-{}-done", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A single-shard job that fully completed before the daemon died:
    // checkpoint on disk, completion journaled.
    let tsv = shard_checkpoint_tsv(0, 1);
    std::fs::write(dir.join(checkpoint_name(0, 0)), tsv.as_bytes()).unwrap();
    let events = [
        JournalEvent::Submitted {
            job: 0,
            spec: job_spec(1),
        },
        JournalEvent::ShardStarted {
            job: 0,
            shard: 0,
            attempt: 0,
        },
        JournalEvent::ShardSaved {
            job: 0,
            shard: 0,
            attempt: 0,
            path: checkpoint_name(0, 0),
            digest: content_digest(tsv.as_bytes()),
        },
        JournalEvent::JobCompleted { job: 0 },
    ];
    let text: String = events
        .iter()
        .map(|e| format!("{}\n", render_event(e)))
        .collect();
    std::fs::write(Journal::path_in(&dir), text).unwrap();

    let daemon = Daemon::spawn(test_config(&dir, true)).expect("daemon resumes");
    let addr = format!("127.0.0.1:{}", daemon.port());
    // The settled job is immediately done — no worker ever runs.
    let status = wait_for_done(&addr, 0);
    assert_eq!(status.state, "done");
    assert!(status.recovered);
    assert_eq!(status.digests, baseline_digests());

    // A fresh submit gets the next dense id, and a bare status request
    // lists both the recovered job and the live one.
    let job = match call(&addr, &Request::Submit(job_spec(2))).expect("submit") {
        Response::Submitted { job } => job,
        other => panic!("unexpected submit response: {other:?}"),
    };
    assert_eq!(job, 1, "ids stay dense across the resume");
    match call(&addr, &Request::Status { job: None }).expect("status") {
        Response::Status { jobs, .. } => {
            assert_eq!(jobs.len(), 2, "status lists recovered and new jobs");
            assert!(jobs[0].recovered);
            assert!(!jobs[1].recovered);
        }
        other => panic!("unexpected status response: {other:?}"),
    }
    let _ = wait_for_done(&addr, 1);
    shutdown_and_join(&addr, daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Asserts a config refuses to spawn and returns the refusal.
fn spawn_err(cfg: ServeConfig, what: &str) -> String {
    match Daemon::spawn(cfg) {
        Err(e) => e,
        Ok(_daemon) => panic!("{what}: the daemon spawned when it should have refused"),
    }
}

#[test]
fn confusable_state_dir_combinations_refuse_to_spawn() {
    let dir = std::env::temp_dir().join(format!("semint-resume-test-{}-cfg", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --resume without --state-dir: nowhere to read a journal from.
    let cfg = ServeConfig {
        state_dir: None,
        ..test_config(&dir, true)
    };
    let err = spawn_err(cfg, "resume without a state dir");
    assert!(err.contains("--state-dir"), "{err}");

    // --resume over a dir with no journal: nothing to recover.
    std::fs::create_dir_all(&dir).unwrap();
    let err = spawn_err(test_config(&dir, true), "no journal to resume");
    assert!(err.contains("no journal"), "{err}");

    // A fresh (non-resume) start over an existing journal would shadow
    // recoverable work: refused, with the fix spelled out.
    let tsv = shard_checkpoint_tsv(0, 3);
    build_interrupted_state(&dir, 3, tsv.as_bytes(), &content_digest(tsv.as_bytes()));
    let err = spawn_err(test_config(&dir, false), "journal present, no --resume");
    assert!(err.contains("--resume"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
