//! End-to-end supervision tests for `semint serve`: a real daemon spawning
//! real `semint sweep` worker processes (the binary Cargo built for this
//! test run), exercised over the real TCP protocol.
//!
//! The central claim, asserted twice (with and without a killed worker):
//! the daemon's merged digests and VM counters are **identical** to a
//! one-shot in-process sweep over the same seed range.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use semint_core::case::GenProfile;
use semint_core::stats::SweepReport;
use semint_harness::cases::AnyCase;
use semint_harness::engine::{sweep_all, SweepConfig};
use semint_harness::serve::{
    call, Daemon, FaultKind, FaultPlan, JobSpec, JobStatus, Request, Response, ServeConfig,
    MAX_REQUEST_LINE,
};
use semint_harness::source::SeedRange;

/// The spec both supervision tests submit; the baseline sweep must use the
/// same seeds/profile/model-check shape.
const SEEDS: (u64, u64) = (0, 30);

fn test_config() -> ServeConfig {
    ServeConfig {
        // Ephemeral port: tests run concurrently.
        port: 0,
        workers: 2,
        queue_capacity: 4,
        heartbeat_timeout: Duration::from_secs(60),
        max_retries: 2,
        worker_binary: PathBuf::from(env!("CARGO_BIN_EXE_semint")),
        log_path: None,
        echo: false,
        state_dir: None,
        resume: false,
    }
}

fn job_spec(fault: Option<FaultPlan>) -> JobSpec {
    JobSpec {
        seeds: SEEDS,
        profile: "default".into(),
        case: "all".into(),
        shards: 3,
        jobs: 2,
        batch: 1,
        // Off in both the job and the baseline: the supervision tests are
        // about process management, not the model checker's wall-clock.
        model_check: false,
        fault,
    }
}

fn baseline() -> SweepReport {
    let cases = AnyCase::all(false);
    let range = SeedRange::new(SEEDS.0, SEEDS.1).unwrap();
    let cfg = SweepConfig {
        jobs: 2,
        profile: GenProfile::by_name("default").unwrap(),
        model_check: false,
        ..SweepConfig::default()
    };
    sweep_all(&cases, &range, &cfg)
}

/// Polls the daemon until `job` settles (done or failed) and returns its
/// final status.  Panics after a generous deadline so a wedged daemon fails
/// the test instead of hanging it.
fn wait_for_job(addr: &str, job: u64) -> JobStatus {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        assert!(
            Instant::now() < deadline,
            "job {job} did not settle within the deadline"
        );
        match call(addr, &Request::Status { job: Some(job) }).expect("status call") {
            Response::Status { jobs, .. } => {
                let status = jobs.into_iter().next().expect("requested job exists");
                if status.state == "done" || status.state == "failed" {
                    return status;
                }
            }
            other => panic!("unexpected status response: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn submit(addr: &str, spec: JobSpec) -> u64 {
    match call(addr, &Request::Submit(spec)).expect("submit call") {
        Response::Submitted { job } => job,
        other => panic!("unexpected submit response: {other:?}"),
    }
}

fn shutdown_and_join(addr: &str, daemon: Daemon) {
    match call(addr, &Request::Shutdown).expect("shutdown call") {
        Response::Ok => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    daemon.join();
}

/// Asserts the daemon's merged report equals the one-shot baseline on every
/// digest-grade fact: per-case digests AND full VM counters.
fn assert_matches_baseline(status: &JobStatus, what: &str) {
    let whole = baseline();
    let expected: Vec<String> = whole.cases.iter().map(|c| c.digest()).collect();
    assert_eq!(
        status.digests, expected,
        "{what}: serve-merged digests must be byte-identical to the one-shot sweep"
    );
    let merged = SweepReport::from_tsv(&status.report_tsv).expect("daemon-sent TSV parses");
    assert_eq!(merged.cases.len(), whole.cases.len());
    for (merged_case, direct) in merged.cases.iter().zip(&whole.cases) {
        assert_eq!(merged_case.case, direct.case);
        assert_eq!(
            merged_case.counters, direct.counters,
            "{what}: case {} VM counters must survive shard merge exactly",
            direct.case
        );
        assert_eq!(merged_case.scenarios, direct.scenarios);
        assert_eq!(merged_case.failures.len(), direct.failures.len());
    }
}

#[test]
fn served_job_merges_to_the_one_shot_sweep_digests() {
    let daemon = Daemon::spawn(test_config()).expect("daemon spawns");
    let addr = format!("127.0.0.1:{}", daemon.port());
    assert!(matches!(
        call(&addr, &Request::Ping).expect("ping"),
        Response::Ok
    ));
    let job = submit(&addr, job_spec(None));
    let status = wait_for_job(&addr, job);
    assert_eq!(status.state, "done", "error: {:?}", status.error);
    assert_eq!(status.shards_done, 3);
    assert_eq!(status.shards_total, 3);
    assert_eq!(status.retries, 0, "no fault was injected");
    assert_matches_baseline(&status, "clean fleet");
    shutdown_and_join(&addr, daemon);
}

#[test]
fn killed_worker_slice_is_reissued_and_digests_still_converge() {
    let log_path = std::env::temp_dir().join(format!(
        "semint-serve-test-{}-crash.log",
        std::process::id()
    ));
    let cfg = ServeConfig {
        log_path: Some(log_path.clone()),
        ..test_config()
    };
    let daemon = Daemon::spawn(cfg).expect("daemon spawns");
    let addr = format!("127.0.0.1:{}", daemon.port());
    // Shard 1's first attempt aborts mid-sweep after 3 scenarios, leaving
    // no report — a genuine crash from the supervisor's point of view.
    let job = submit(
        &addr,
        job_spec(Some(FaultPlan {
            shard: 1,
            after: 3,
            kind: FaultKind::Crash,
        })),
    );
    let status = wait_for_job(&addr, job);
    assert_eq!(status.state, "done", "error: {:?}", status.error);
    assert!(
        status.retries >= 1,
        "the killed worker must have been re-issued"
    );
    assert_eq!(status.shards_done, 3, "all shards merged despite the crash");
    // The re-issued slice reproduced the dead worker's exact results.
    assert_matches_baseline(&status, "crash recovery");
    shutdown_and_join(&addr, daemon);
    // The daemon log recorded the supervision: a crash classified and the
    // slice re-issued.
    let log = std::fs::read_to_string(&log_path).expect("daemon log written");
    let _ = std::fs::remove_file(&log_path);
    assert!(log.contains("\"event\":\"shard-retry\""), "{log}");
    assert!(log.contains("exit code 42"), "{log}");
    assert!(log.contains("\"event\":\"job-done\""), "{log}");
}

#[test]
fn full_queue_applies_backpressure_and_drain_refuses_new_jobs() {
    let log_path = std::env::temp_dir().join(format!(
        "semint-serve-test-{}-drain.log",
        std::process::id()
    ));
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        log_path: Some(log_path.clone()),
        ..test_config()
    };
    let daemon = Daemon::spawn(cfg).expect("daemon spawns");
    let addr = format!("127.0.0.1:{}", daemon.port());
    let first = submit(&addr, job_spec(None));
    assert_eq!(first, 0);
    // Capacity 1 and one unfinished job: the next submit must bounce.
    match call(&addr, &Request::Submit(job_spec(None))).expect("submit call") {
        Response::Error(e) => assert!(e.contains("full"), "{e}"),
        other => panic!("expected backpressure, got {other:?}"),
    }
    // Draining refuses new jobs outright…
    match call(&addr, &Request::Shutdown).expect("shutdown call") {
        Response::Ok => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    // The accepted job can finish arbitrarily fast, so a post-shutdown
    // submit sees either the explicit draining refusal or a daemon that has
    // already drained and gone away — both prove admission is closed.
    match call(&addr, &Request::Submit(job_spec(None))) {
        Ok(Response::Error(e)) => assert!(e.contains("draining"), "{e}"),
        Ok(other) => panic!("expected a draining refusal, got {other:?}"),
        Err(_daemon_already_gone) => {}
    }
    // …but the accepted job still runs to completion before the daemon
    // exits.  join() only returns once the queue has drained; the daemon
    // may already be gone by then, so completion — digests included — is
    // asserted through its log rather than a status call it might no
    // longer answer.
    daemon.join();
    let log = std::fs::read_to_string(&log_path).expect("daemon log written");
    let _ = std::fs::remove_file(&log_path);
    assert!(log.contains("\"event\":\"job-done\""), "{log}");
    assert!(log.contains("\"event\":\"daemon-exit\""), "{log}");
    let expected: Vec<String> = baseline().cases.iter().map(|c| c.digest()).collect();
    assert!(
        log.contains(&expected.join(" ")),
        "job-done must record the one-shot sweep's digests\n{log}"
    );
}

/// Sends raw bytes to the daemon and returns whatever single line it answers
/// with (empty if it just hangs up), exactly like a hostile client would.
fn raw_exchange(addr: &str, payload: &[u8]) -> String {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.write_all(payload).expect("write payload");
    // Half-close so a daemon waiting for the newline sees EOF instead of
    // blocking forever on a line that never terminates.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut line = String::new();
    let _ = BufReader::new(stream).read_line(&mut line);
    line
}

#[test]
fn garbage_and_oversized_request_lines_bounce_without_killing_the_daemon() {
    let daemon = Daemon::spawn(test_config()).expect("daemon spawns");
    let addr = format!("127.0.0.1:{}", daemon.port());

    // A request line past the cap is refused with an Error envelope instead
    // of being buffered without bound.
    let oversized = vec![b'x'; MAX_REQUEST_LINE as usize + 64];
    let reply = raw_exchange(&addr, &oversized);
    assert!(
        reply.contains("\"error\"") && reply.contains("request line"),
        "oversized line must be refused explicitly, got: {reply:?}"
    );

    // Invalid UTF-8 with a proper newline is malformed, not fatal.
    let reply = raw_exchange(&addr, b"\xff\xfe{not json}\n");
    assert!(
        reply.contains("\"error\""),
        "malformed bytes must get an Error envelope, got: {reply:?}"
    );

    // Valid JSON that is not a request is also just an error.
    let reply = raw_exchange(&addr, b"{\"cmd\": \"frobnicate\"}\n");
    assert!(
        reply.contains("\"error\""),
        "unknown request must get an Error envelope, got: {reply:?}"
    );

    // A client that connects and immediately hangs up must not wedge the
    // accept loop either.
    drop(std::net::TcpStream::connect(&addr).expect("connect"));

    // After all that abuse the daemon still answers well-formed requests.
    assert!(matches!(
        call(&addr, &Request::Ping).expect("ping after abuse"),
        Response::Ok
    ));
    shutdown_and_join(&addr, daemon);
}
