//! The deterministic chaos drill as a test: a real daemon is fault-injected
//! (per the seed-derived schedule), SIGKILLed mid-job, resumed with
//! `--resume`, and must still produce digests and VM counters byte-identical
//! to an uninterrupted one-shot sweep — without re-running any shard whose
//! checkpoint survived the kill.
//!
//! This is the same machinery `semint chaos` drives from the CLI (and CI
//! drives in release mode); here it runs in-process so a failed invariant
//! points straight at the round's state dir.

use std::path::PathBuf;

use semint_harness::serve::{run_drills, ChaosConfig};

#[test]
fn killed_and_resumed_daemon_matches_the_uninterrupted_sweep() {
    let state_root = std::env::temp_dir().join(format!("semint-chaos-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_root);
    let cfg = ChaosConfig {
        binary: PathBuf::from(env!("CARGO_BIN_EXE_semint")),
        seed: 1,
        rounds: 2,
        seeds: (0, 24),
        profile: "default".into(),
        case: "all".into(),
        shards: 3,
        jobs: 2,
        workers: 2,
        batch: 1,
        // Wedge rounds are only caught by this timeout; keep it short but
        // well above an honest shard's runtime.
        worker_timeout_ms: 5_000,
        state_root: state_root.clone(),
        echo: false,
    };
    let outcomes = run_drills(&cfg).expect("the drill runs to completion");
    assert_eq!(outcomes.len(), 2, "one outcome per round");
    for outcome in &outcomes {
        assert!(
            outcome.invariant_holds(),
            "round {} violated the crash-safety invariant \
             (digests_match: {}, counters_match: {}, rerun_after_resume: {:?}); \
             post-mortem state in {}",
            outcome.round,
            outcome.digests_match,
            outcome.counters_match,
            outcome.rerun_after_resume,
            outcome.state_dir.display(),
        );
    }
    let _ = std::fs::remove_dir_all(&state_root);
}
